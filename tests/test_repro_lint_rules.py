"""Unit tests for the repro-lint rule families on synthetic snippets.

Each rule family gets positive cases (the hazard is reported) and
negative cases (the disciplined idiom passes), plus suppression-comment
handling. Snippets are analyzed in-memory via
:func:`repro.analysis.analyze_source` with paths chosen to exercise the
path-sensitive rules (``repro/sim/rng.py`` construction amnesty,
``repro/metrics/`` accumulator scoping).
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import analyze_source
from repro.analysis.context import FileContext
from repro.analysis.rules.rng_streams import stream_name_template
from repro.analysis.rules.units import unit_of

SIM_PATH = "src/repro/sim/processes.py"


def lint(source: str, path: str = SIM_PATH):
    return analyze_source(textwrap.dedent(source), path)


def rules_of(findings) -> set[str]:
    return {f.rule for f in findings}


# ---------------------------------------------------------------------
# RPR001 — determinism hazards
# ---------------------------------------------------------------------


class TestDeterminism:
    def test_stdlib_global_random_flagged(self):
        findings = lint("""
            import random

            def jitter() -> float:
                return random.random()
            """)
        assert rules_of(findings) == {"RPR001"}
        assert "global RNG" in findings[0].message

    def test_from_import_random_resolved(self):
        findings = lint("""
            from random import uniform

            def jitter() -> float:
                return uniform(0, 1)
            """)
        assert rules_of(findings) == {"RPR001"}

    def test_wall_clock_flagged(self):
        findings = lint("""
            import time

            def stamp() -> float:
                return time.time()
            """)
        assert rules_of(findings) == {"RPR001"}

    def test_datetime_now_flagged_through_from_import(self):
        findings = lint("""
            from datetime import datetime

            def stamp():
                return datetime.now()
            """)
        assert rules_of(findings) == {"RPR001"}

    def test_perf_counter_allowed(self):
        assert lint("""
            import time

            def elapsed() -> float:
                started = time.perf_counter()
                return time.perf_counter() - started
            """) == []

    def test_perf_counter_flagged_inside_obs(self):
        # Observability code must carry simulated time only; even the
        # monotonic allowlist is confined to repro/obs/profile.py.
        findings = lint("""
            import time

            def stamp() -> float:
                return time.perf_counter()
            """, path="src/repro/obs/trace.py")
        assert rules_of(findings) == {"RPR001"}
        assert "repro/obs/profile.py" in findings[0].message

    def test_perf_counter_allowed_in_obs_profile(self):
        assert lint("""
            import time

            def elapsed() -> float:
                started = time.perf_counter()
                return time.perf_counter() - started
            """, path="src/repro/obs/profile.py") == []

    def test_process_time_allowed_in_obs_resources(self):
        # Resource telemetry (CPU seconds, peak RSS) is the second and
        # last repro.obs module allowed to read a clock.
        assert lint("""
            import time

            def cpu_time_s() -> float:
                return time.process_time()
            """, path="src/repro/obs/resources.py") == []

    def test_clock_still_flagged_in_obs_ledger(self):
        # The allowlist names profile.py and resources.py exactly; any
        # other repro.obs module reading a clock fails lint.
        findings = lint("""
            import time

            def stamp() -> float:
                return time.perf_counter()
            """, path="src/repro/obs/ledger.py")
        assert rules_of(findings) == {"RPR001"}
        assert "repro/obs/resources.py" in findings[0].message

    def test_threaded_generator_draw_allowed(self):
        assert lint("""
            import numpy as np

            def draw(rng: np.random.Generator) -> float:
                return float(rng.random())
            """) == []

    def test_for_over_set_flagged(self):
        findings = lint("""
            def total(users):
                acc = 0.0
                for uid in set(users):
                    acc += len(uid)
                return acc
            """)
        assert rules_of(findings) == {"RPR001"}
        assert "PYTHONHASHSEED" in findings[0].message

    def test_sum_over_set_literal_flagged(self):
        findings = lint("""
            def total(a, b, c):
                return sum({a, b, c})
            """)
        assert rules_of(findings) == {"RPR001"}

    def test_sorted_set_allowed(self):
        assert lint("""
            def total(users):
                acc = 0.0
                for uid in sorted(set(users)):
                    acc += len(uid)
                return acc
            """) == []

    def test_dict_iteration_allowed(self):
        # dicts iterate in insertion order (py3.7+): deterministic.
        assert lint("""
            def total(table):
                return sum(table.values())
            """) == []


# ---------------------------------------------------------------------
# RPR002 — RNG stream discipline
# ---------------------------------------------------------------------


class TestRngStreams:
    def test_default_rng_outside_rng_home_flagged(self):
        findings = lint("""
            import numpy as np

            def make():
                return np.random.default_rng(7)
            """)
        assert rules_of(findings) == {"RPR002"}

    def test_default_rng_without_import_still_flagged(self):
        # An un-imported ``np`` is a NameError at runtime, but the
        # hazard must not hide behind the missing import.
        findings = lint("""
            def make():
                return np.random.default_rng(7)
            """)
        assert rules_of(findings) == {"RPR002"}

    def test_legacy_randomstate_flagged(self):
        findings = lint("""
            import numpy as np

            def make():
                return np.random.RandomState(7)
            """)
        assert rules_of(findings) == {"RPR002"}

    def test_construction_allowed_in_rng_home(self):
        assert lint("""
            import numpy as np

            def make(seed) -> np.random.Generator:
                return np.random.Generator(np.random.PCG64(seed))
            """, path="src/repro/sim/rng.py") == []

    def test_literal_stream_name_allowed(self):
        assert lint("""
            def build(registry):
                return registry.stream("traces")
            """) == []

    def test_tag_concatenation_allowed(self):
        assert lint("""
            def build(registry, rng_tag: str):
                return registry.fresh("campaigns" + rng_tag)
            """) == []

    def test_fstring_stream_name_allowed(self):
        assert lint("""
            def build(registry, shard: int):
                return registry.stream(f"exchange#{shard}")
            """) == []

    def test_computed_stream_name_flagged(self):
        findings = lint("""
            def build(registry, names):
                return registry.stream(names.pop())
            """)
        assert rules_of(findings) == {"RPR002"}
        assert "statically resolvable" in findings[0].message

    def test_stream_call_arity_flagged(self):
        findings = lint("""
            def build(registry):
                return registry.stream("a", "b")
            """)
        assert rules_of(findings) == {"RPR002"}

    def test_stream_name_template_rendering(self):
        import ast

        def template_of(expr: str):
            return stream_name_template(ast.parse(expr, mode="eval").body)

        assert template_of("'traces'") == "traces"
        assert template_of("'campaigns' + rng_tag") == "campaigns{rng_tag}"
        assert template_of("f'user-{uid}'") == "user-{uid}"
        assert template_of("names.pop()") is None

    def test_module_constants_fold_into_templates(self):
        """The repro.faults idiom: stream prefixes named once at module
        level must resolve to their literal values in the manifest."""
        import ast

        from repro.analysis.rules.rng_streams import module_constants

        tree = ast.parse(textwrap.dedent("""
            STREAM_LOSS = "faults.loss"
            STREAM_OUTAGE: str = "faults.outage"
            REBOUND = "first"
            REBOUND = "second"
            NOT_STR = 7

            def build(registry, uid):
                return registry.fresh(f"{STREAM_LOSS}:{uid}")
            """))
        constants = module_constants(tree)
        assert constants == {"STREAM_LOSS": "faults.loss",
                             "STREAM_OUTAGE": "faults.outage"}

        def template_of(expr: str):
            return stream_name_template(ast.parse(expr, mode="eval").body,
                                        constants)

        assert template_of("f'{STREAM_LOSS}:{uid}'") == "faults.loss:{uid}"
        assert template_of("STREAM_OUTAGE") == "faults.outage"
        assert template_of("f'{REBOUND}:{uid}'") == "{REBOUND}:{uid}"
        assert template_of("f'{unknown}'") == "{unknown}"

    def test_constant_folded_stream_call_passes_lint(self):
        assert lint("""
            PREFIX = "faults.loss"

            def build(registry, uid):
                return registry.fresh(f"{PREFIX}:{uid}")
            """) == []


# ---------------------------------------------------------------------
# RPR005 — nondeterministic numpy entry points
# ---------------------------------------------------------------------


class TestNumpyEntropy:
    def test_numpy_global_state_flagged(self):
        findings = lint("""
            import numpy as np

            def noise():
                np.random.seed(0)
                return np.random.rand(4)
            """)
        assert len(findings) == 2
        assert rules_of(findings) == {"RPR005"}
        assert "hidden global RandomState" in findings[0].message

    def test_unseeded_default_rng_flagged_even_in_rng_home(self):
        # RPR002 grants repro/sim/rng.py construction amnesty; RPR005
        # does not — the registry itself must seed everything it builds.
        findings = lint("""
            import numpy as np

            def make():
                return np.random.default_rng()
            """, path="src/repro/sim/rng.py")
        assert rules_of(findings) == {"RPR005"}
        assert "explicit seed" in findings[0].message

    def test_none_seed_is_unseeded(self):
        findings = lint("""
            import numpy as np

            def make():
                return np.random.default_rng(seed=None)
            """, path="src/repro/sim/rng.py")
        assert rules_of(findings) == {"RPR005"}

    def test_unseeded_seedsequence_flagged(self):
        findings = lint("""
            import numpy as np

            def make():
                return np.random.SeedSequence()
            """, path="src/repro/sim/rng.py")
        assert rules_of(findings) == {"RPR005"}

    def test_seeded_construction_in_rng_home_passes(self):
        assert lint("""
            import numpy as np

            def make(seed: int) -> np.random.Generator:
                return np.random.Generator(np.random.PCG64(seed))
            """, path="src/repro/sim/rng.py") == []

    def test_unseeded_outside_home_gets_both_rules(self):
        # Outside the home module the same call is two violations:
        # construction out of place (RPR002) and entropy seeding (RPR005).
        findings = lint("""
            import numpy as np

            def make():
                return np.random.default_rng()
            """)
        assert rules_of(findings) == {"RPR002", "RPR005"}

    def test_system_random_always_flagged(self):
        findings = lint("""
            import random

            def token():
                return random.SystemRandom().random()
            """, path="src/repro/sim/rng.py")
        assert rules_of(findings) == {"RPR005"}
        assert "OS-entropy" in findings[0].message

    def test_threaded_generator_draw_passes(self):
        assert lint("""
            import numpy as np

            def draw(rng: np.random.Generator, n: int):
                return rng.poisson(2.0, n)
            """) == []

    def test_kwargs_splat_gets_benefit_of_the_doubt(self):
        assert lint("""
            import numpy as np

            def make(**kwargs):
                return np.random.default_rng(**kwargs)
            """, path="src/repro/sim/rng.py") == []


# ---------------------------------------------------------------------
# RPR003 — unit discipline
# ---------------------------------------------------------------------


class TestUnits:
    def test_cross_dimension_add_flagged(self):
        findings = lint("""
            def total(tail_j: float, epoch_s: float) -> float:
                return tail_j + epoch_s
            """)
        assert rules_of(findings) == {"RPR003"}
        assert "mixes dimensions" in findings[0].message

    def test_scale_mismatch_flagged(self):
        findings = lint("""
            def total(latency_s: float, timeout_ms: float) -> float:
                return latency_s - timeout_ms
            """)
        assert rules_of(findings) == {"RPR003"}
        assert "scales" in findings[0].message

    def test_comparison_mismatch_flagged(self):
        findings = lint("""
            def late(deadline_s: float, energy_j: float) -> bool:
                return deadline_s > energy_j
            """)
        assert rules_of(findings) == {"RPR003"}

    def test_keyword_mismatch_flagged(self):
        findings = lint("""
            def build(report, duration_ms):
                return report(ad_joules=duration_ms)
            """)
        assert rules_of(findings) == {"RPR003"}
        assert "keyword" in findings[0].message

    def test_same_unit_arithmetic_allowed(self):
        assert lint("""
            def total(ad_joules: float, app_joules: float) -> float:
                return ad_joules + app_joules
            """) == []

    def test_multiplication_combines_dimensions_allowed(self):
        assert lint("""
            def rate(energy_j: float, window_s: float) -> float:
                return energy_j / window_s
            """) == []

    def test_count_prefix_exempt(self):
        assert lint("""
            def horizon(n_days: int, train_days: int) -> int:
                return n_days - train_days
            """) == []

    def test_unit_named_function_literal_return_flagged(self):
        findings = lint("""
            def tail_energy_j() -> float:
                return 12.5
            """)
        assert rules_of(findings) == {"RPR003"}
        assert "bare literal" in findings[0].message

    def test_unit_named_function_zero_default_allowed(self):
        assert lint("""
            def tail_energy_j(samples) -> float:
                if not samples:
                    return 0.0
                return sum(samples)
            """) == []

    def test_unit_of_helper(self):
        assert unit_of("ad_joules") == ("joules", "energy", 1.0)
        assert unit_of("epoch_s") == ("s", "time", 1.0)
        assert unit_of("n_days") is None
        assert unit_of("plain") is None


# ---------------------------------------------------------------------
# RPR004 — merge associativity
# ---------------------------------------------------------------------

METRICS_PATH = "src/repro/metrics/accumulators.py"


class TestMerges:
    def test_accumulator_without_merge_flagged(self):
        findings = lint("""
            class BrokenAccumulator:
                total: float = 0.0
            """, path=METRICS_PATH)
        assert rules_of(findings) == {"RPR004"}
        assert "no merge()" in findings[0].message

    def test_mutating_merge_flagged(self):
        findings = lint("""
            class SneakyAccumulator:
                def __init__(self):
                    self.total = 0.0

                def merge(self, other):
                    self.total += other.total
            """, path=METRICS_PATH)
        assert rules_of(findings) == {"RPR004"}
        assert "never returns" in findings[0].message

    def test_pure_merge_allowed(self):
        assert lint("""
            class GoodAccumulator:
                def __init__(self, total: float = 0.0):
                    self.total = total

                def merge(self, other):
                    return GoodAccumulator(self.total + other.total)
            """, path=METRICS_PATH) == []

    def test_set_reduction_in_metrics_flagged(self):
        findings = lint("""
            def total(values):
                return sum(set(values))
            """, path=METRICS_PATH)
        # RPR001 flags the hashseed hazard; RPR004 flags it again as a
        # float-associativity hazard specific to metrics code.
        assert rules_of(findings) == {"RPR001", "RPR004"}

    def test_rule_scoped_to_mergeable_packages(self):
        assert lint("""
            class ElsewhereAccumulator:
                total: float = 0.0
            """, path="src/repro/client/cache.py") == []

    def test_mutating_merge_flagged_in_obs_tree(self):
        # Any class defining merge — accumulator-named or not — must
        # return a value when it lives in a mergeable tree.
        findings = lint("""
            class Snapshot:
                def __init__(self):
                    self.counters = {}

                def merge(self, other):
                    self.counters.update(other.counters)
            """, path="src/repro/obs/metrics.py")
        assert rules_of(findings) == {"RPR004"}
        assert "never returns" in findings[0].message

    def test_non_accumulator_without_merge_allowed(self):
        # Only *Accumulator names are obliged to define merge; helper
        # classes in the mergeable trees may simply have none.
        assert lint("""
            class TraceEvent:
                ts: float = 0.0
            """, path="src/repro/obs/trace.py") == []

    def test_pure_snapshot_merge_allowed_in_obs_tree(self):
        assert lint("""
            class Snapshot:
                def __init__(self, counters=None):
                    self.counters = counters or {}

                def merge(self, other):
                    merged = dict(self.counters)
                    merged.update(other.counters)
                    return Snapshot(merged)
            """, path="src/repro/obs/metrics.py") == []


# ---------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------


class TestSuppression:
    def test_line_suppression(self):
        findings = lint("""
            import time

            def stamp() -> float:
                return time.time()  # repro-lint: disable=RPR001
            """)
        assert findings == []

    def test_line_suppression_wrong_rule_keeps_finding(self):
        findings = lint("""
            import time

            def stamp() -> float:
                return time.time()  # repro-lint: disable=RPR002
            """)
        assert rules_of(findings) == {"RPR001"}

    def test_multi_rule_suppression(self):
        findings = lint("""
            import time

            def stamp() -> float:
                return time.time()  # repro-lint: disable=RPR002,RPR001
            """)
        assert findings == []

    def test_disable_all_on_line(self):
        findings = lint("""
            import time

            def stamp() -> float:
                return time.time()  # repro-lint: disable=all
            """)
        assert findings == []

    def test_file_level_suppression(self):
        findings = lint("""
            # repro-lint: disable-file=RPR001
            import time

            def stamp() -> float:
                return time.time()
            """)
        assert findings == []

    def test_suppression_must_sit_on_the_finding_line(self):
        findings = lint("""
            import time

            # repro-lint: disable=RPR001
            def stamp() -> float:
                return time.time()
            """)
        assert rules_of(findings) == {"RPR001"}


# ---------------------------------------------------------------------
# Context plumbing
# ---------------------------------------------------------------------


class TestContext:
    def test_module_parts(self):
        ctx = FileContext("x = 1\n", "src/repro/sim/rng.py")
        assert ctx.module == "repro.sim.rng"
        assert not ctx.is_test

    def test_test_detection(self):
        ctx = FileContext("x = 1\n", "tests/test_cli.py")
        assert ctx.is_test

    def test_alias_resolution(self):
        ctx = FileContext("import numpy.random as npr\n",
                          "src/repro/sim/a.py")
        import ast
        call = ast.parse("npr.default_rng()", mode="eval").body
        assert ctx.dotted_name(call.func) == "numpy.random.default_rng"

    def test_syntax_error_propagates(self):
        with pytest.raises(SyntaxError):
            analyze_source("def broken(:\n", "src/repro/x.py")


# ---------------------------------------------------------------------
# Interprocedural rules (RPR006-RPR008) - injected-violation drills
# ---------------------------------------------------------------------


from repro.analysis.session import analyze_project_sources  # noqa: E402

HARNESS = "src/repro/experiments/harness.py"


def project_lint(files: dict[str, str], select: list[str] | None = None):
    dedented = {path: textwrap.dedent(source)
                for path, source in files.items()}
    return analyze_project_sources(dedented, select=select)


class TestShardPurity:
    def test_global_mutation_reachable_from_shard_flagged(self):
        findings = project_lint({HARNESS: """
            _CACHE = {}

            def remember(key):
                _CACHE[key] = True
                return key

            def execute_shard(job):
                return remember(job)
            """}, select=["RPR006"])
        assert rules_of(findings) == {"RPR006"}
        assert "shard-reachable via" in findings[0].message
        assert "_CACHE" in findings[0].message

    def test_same_mutation_outside_shard_closure_is_clean(self):
        findings = project_lint({"src/repro/runner.py": """
            _CACHE = {}

            def remember(key):
                _CACHE[key] = True
                return key
            """}, select=["RPR006"])
        assert findings == []

    def test_environ_write_flagged(self):
        findings = project_lint({HARNESS: """
            import os

            def execute_shard(job):
                os.environ["SHARD"] = str(job)
                return job
            """}, select=["RPR006"])
        assert rules_of(findings) == {"RPR006"}
        assert "os.environ" in findings[0].message

    def test_global_statement_write_flagged(self):
        findings = project_lint({HARNESS: """
            _LAST = None

            def execute_shard(job):
                global _LAST
                _LAST = job
                return job
            """}, select=["RPR006"])
        assert rules_of(findings) == {"RPR006"}

    def test_open_outside_with_flagged_inside_with_clean(self):
        dirty = project_lint({HARNESS: """
            def execute_shard(job):
                handle = open(job)
                return handle
            """}, select=["RPR006"])
        assert rules_of(dirty) == {"RPR006"}
        clean = project_lint({HARNESS: """
            def execute_shard(job):
                with open(job) as handle:
                    return handle.read()
            """}, select=["RPR006"])
        assert clean == []

    def test_thread_spawn_flagged(self):
        findings = project_lint({HARNESS: """
            import threading

            def execute_shard(job):
                worker = threading.Thread(target=print)
                return worker
            """}, select=["RPR006"])
        assert rules_of(findings) == {"RPR006"}

    def test_cross_module_reachability(self):
        findings = project_lint({
            HARNESS: """
                from repro.sim.state import tick

                def execute_shard(job):
                    return tick(job)
                """,
            "src/repro/sim/state.py": """
                _TICKS = []

                def tick(job):
                    _TICKS.append(job)
                    return len(_TICKS)
                """,
        }, select=["RPR006"])
        assert rules_of(findings) == {"RPR006"}
        assert findings[0].path == "src/repro/sim/state.py"

    def test_suppression_with_justification_waives(self):
        findings = project_lint({HARNESS: """
            _CACHE = {}

            def execute_shard(job):
                # justified: per-process memo, rebuilt on re-execution
                _CACHE[job] = True  # repro-lint: disable=RPR006
                return job
            """}, select=["RPR006"])
        assert findings == []

    def test_mutable_class_default_on_shard_class(self):
        findings = project_lint({HARNESS: """
            class Tracker:
                seen = {}

                def note(self, item):
                    return item

            def execute_shard(job):
                tracker = Tracker()
                return tracker.note(job)
            """}, select=["RPR006"])
        assert rules_of(findings) == {"RPR006"}
        assert "mutable class-level default" in findings[0].message


class TestSerializationSafety:
    def test_callable_field_rejected(self):
        findings = project_lint({HARNESS: """
            from dataclasses import dataclass
            from typing import Callable

            @dataclass(slots=True, kw_only=True)
            class ShardJob:
                hook: Callable[[int], int]
            """}, select=["RPR007"])
        assert rules_of(findings) == {"RPR007"}
        assert "Callable" in findings[0].message

    def test_missing_contract_flags_rejected(self):
        findings = project_lint({HARNESS: """
            from dataclasses import dataclass

            @dataclass
            class ShardJob:
                horizon_s: float = 0.0
            """}, select=["RPR007"])
        messages = " ".join(f.message for f in findings)
        assert rules_of(findings) == {"RPR007"}
        assert "kw_only" in messages and "slots" in messages

    def test_non_dataclass_root_rejected(self):
        findings = project_lint({HARNESS: """
            class ShardJob:
                def __init__(self):
                    self.horizon_s = 0.0
            """}, select=["RPR007"])
        assert rules_of(findings) == {"RPR007"}
        assert "not a dataclass" in findings[0].message

    def test_lambda_default_factory_rejected(self):
        findings = project_lint({HARNESS: """
            from dataclasses import dataclass, field

            @dataclass(slots=True, kw_only=True)
            class ShardJob:
                counts: dict = field(default_factory=lambda: {})
            """}, select=["RPR007"])
        assert rules_of(findings) == {"RPR007"}
        assert "lambda" in findings[0].message

    def test_banned_type_found_through_closure(self):
        findings = project_lint({
            HARNESS: """
                from dataclasses import dataclass

                from repro.sim.payload import Payload

                @dataclass(slots=True, kw_only=True)
                class ShardJob:
                    payload: Payload
                """,
            "src/repro/sim/payload.py": """
                import logging
                from dataclasses import dataclass

                @dataclass
                class Payload:
                    log: logging.Logger
                """,
        }, select=["RPR007"])
        assert rules_of(findings) == {"RPR007"}
        assert "closure of ShardJob" in findings[0].message
        assert findings[0].path == "src/repro/sim/payload.py"

    def test_clean_value_type_passes(self):
        findings = project_lint({HARNESS: """
            from dataclasses import dataclass, field

            @dataclass(slots=True, kw_only=True)
            class ShardJob:
                config: dict = field(default_factory=dict)
                horizon_s: float = 0.0
                mode: str = "prefetch"
            """}, select=["RPR007"])
        assert findings == []


class TestUnitFlow:
    def test_cross_module_argument_mismatch(self):
        findings = project_lint({
            "src/repro/sim/clock.py": """
                def wait(timeout_ms):
                    return timeout_ms
                """,
            "src/repro/sim/loop.py": """
                from repro.sim.clock import wait

                def step(delay_s):
                    return wait(delay_s)
                """,
        }, select=["RPR008"])
        assert rules_of(findings) == {"RPR008"}
        assert findings[0].path == "src/repro/sim/loop.py"
        assert "timeout_ms" in findings[0].message

    def test_matching_units_are_clean(self):
        findings = project_lint({
            "src/repro/sim/clock.py": """
                def wait(timeout_ms):
                    return timeout_ms
                """,
            "src/repro/sim/loop.py": """
                from repro.sim.clock import wait

                def step(delay_ms):
                    return wait(delay_ms)
                """,
        }, select=["RPR008"])
        assert findings == []

    def test_assignment_rebinding_mismatch(self):
        findings = project_lint({"src/repro/sim/clock.py": """
            def shift(delay_s):
                delay_ms = delay_s
                return delay_ms
            """}, select=["RPR008"])
        assert rules_of(findings) == {"RPR008"}

    def test_explicit_conversion_is_clean(self):
        findings = project_lint({"src/repro/sim/clock.py": """
            def shift(delay_s):
                delay_ms = delay_s * 1000.0
                return delay_ms
            """}, select=["RPR008"])
        assert findings == []

    def test_return_promise_mismatch(self):
        findings = project_lint({"src/repro/sim/clock.py": """
            def elapsed_ms(start_s):
                return start_s
            """}, select=["RPR008"])
        assert rules_of(findings) == {"RPR008"}
        assert "promises _ms" in findings[0].message

    def test_unit_promising_call_result_mismatch(self):
        findings = project_lint({"src/repro/sim/clock.py": """
            def window_s():
                return 3.0

            def schedule():
                window_ms = window_s()
                return window_ms
            """}, select=["RPR008"])
        assert rules_of(findings) == {"RPR008"}

    def test_method_receiver_offset(self):
        findings = project_lint({"src/repro/sim/clock.py": """
            class Timer:
                def wait(self, timeout_ms):
                    return timeout_ms

                def step(self, delay_s):
                    return self.wait(delay_s)
            """}, select=["RPR008"])
        assert rules_of(findings) == {"RPR008"}

    def test_ambiguous_callee_stays_silent(self):
        # Two classes define wait(); CHA cannot pick one, so no finding.
        findings = project_lint({"src/repro/sim/clock.py": """
            class A:
                def wait(self, timeout_ms):
                    return timeout_ms

            class B:
                def wait(self, timeout_s):
                    return timeout_s

            def step(timer, delay_s):
                return timer.wait(delay_s)
            """}, select=["RPR008"])
        assert findings == []


class TestSuppressionSpans:
    def test_comment_anywhere_on_multiline_statement(self):
        findings = lint("""
            import time

            def stamp() -> float:
                return (
                    time.time()
                )  # repro-lint: disable=RPR001
            """)
        assert findings == []

    def test_comment_on_decorator_line_covers_def(self):
        findings = lint("""
            def validated(cls):
                return cls

            @validated  # repro-lint: disable=RPR004
            class LatencyAccumulator:
                pass
            """, path="src/repro/metrics/latency.py")
        assert "RPR004" not in rules_of(findings)

    def test_comment_inside_body_does_not_blanket_the_def(self):
        findings = lint("""
            import time

            def stamp() -> float:
                x = 1  # repro-lint: disable=RPR001
                return time.time()
            """)
        assert rules_of(findings) == {"RPR001"}
