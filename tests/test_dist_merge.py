"""Property test: the shard merge is arrival-order- and duplicate-proof.

The distributed coordinator's bit-identity contract reduces to one
algebraic property of the Runner's merge folds: for any arrival
sequence of :class:`~repro.runner.ShardResult` objects that covers
every shard index at least once — any permutation, any number of
duplicate deliveries — ``_merge_prefetch`` and ``_merge_realtime``
produce exactly the outcome of the canonical in-order sequence.
Hypothesis drives the arrival sequences; the shard results themselves
are real (one executed headline run), so the accumulators being folded
are the production ones, not stand-ins.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import (
    Runner,
    _merge_prefetch,
    _merge_realtime,
    canonical_shard_results,
    run_shard_task,
)

N_SHARDS = 3

#: Arrival sequences: every shard index at least once, duplicates and
#: any interleaving allowed (what an unreliable worker fleet delivers).
ARRIVALS = st.lists(
    st.integers(min_value=0, max_value=N_SHARDS - 1),
    min_size=N_SHARDS, max_size=2 * N_SHARDS + 2,
).filter(lambda seq: set(seq) == set(range(N_SHARDS)))


@pytest.fixture(scope="module")
def shard_results(tiny_config, tiny_world):
    """Real shard results of one headline run, in shard order."""
    runner = Runner(tiny_config, shards=N_SHARDS, world=tiny_world)
    tasks = runner._tasks("headline", tiny_world)
    return [run_shard_task(task) for task in tasks]


@pytest.fixture(scope="module")
def baseline(shard_results, tiny_config):
    return (_merge_prefetch(shard_results, tiny_config),
            _merge_realtime(shard_results))


@settings(max_examples=40, deadline=None)
@given(arrivals=ARRIVALS)
def test_merges_are_invariant_under_arrival_order_and_duplicates(
        shard_results, baseline, tiny_config, arrivals):
    # Duplicates are *copies*, as a re-executed shard would deliver —
    # first-wins must not depend on object identity.
    seen: set[int] = set()
    delivered = []
    for index in arrivals:
        original = shard_results[index]
        delivered.append(original if index not in seen
                         else copy.deepcopy(original))
        seen.add(index)
    assert _merge_prefetch(delivered, tiny_config) == baseline[0]
    assert _merge_realtime(delivered) == baseline[1]


@settings(max_examples=40, deadline=None)
@given(arrivals=ARRIVALS)
def test_canonical_shard_results_normalizes_any_arrival(
        shard_results, arrivals):
    delivered = [shard_results[index] for index in arrivals]
    canonical = canonical_shard_results(delivered)
    assert [r.shard_index for r in canonical] == list(range(N_SHARDS))
    assert canonical == shard_results
