"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands_exist():
    parser = build_parser()
    args = parser.parse_args(["run", "e2", "--users", "10"])
    assert args.experiment == "e2"
    assert args.users == 10
    args = parser.parse_args(["headline", "--seed", "3"])
    assert args.seed == 3


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "e99"])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "e1" in out and "e12" in out and "Table 2" in out


def test_run_e2_command(capsys):
    assert main(["run", "e2"]) == 0
    out = capsys.readouterr().out
    assert "per-ad energy" in out
    assert "[e2 took" in out


def test_trace_command(tmp_path, capsys):
    path = tmp_path / "t.jsonl"
    code = main(["trace", str(path), "--users", "12", "--days", "3",
                 "--train-days", "1", "--seed", "21"])
    assert code == 0
    assert path.exists()
    out = capsys.readouterr().out
    assert "12 users" in out

    from repro.traces.io import read_trace
    trace = read_trace(path)
    assert trace.n_users == 12
    assert trace.n_days == 3


def test_report_command_subset(tmp_path, capsys):
    path = tmp_path / "report.md"
    code = main(["report", str(path), "--only", "e2", "--users", "10"])
    assert code == 0
    text = path.read_text()
    assert "Reproduction report" in text
    assert "e2" in text and "per-ad energy" in text


def test_headline_command_small(capsys):
    code = main(["headline", "--users", "12", "--days", "6",
                 "--train-days", "3", "--seed", "15"])
    assert code == 0
    out = capsys.readouterr().out
    assert "energy savings" in out
    assert "SLA violation rate" in out


def test_headline_with_trace_writes_artifacts(tmp_path, capsys):
    from repro.obs.runtime import set_default_obs_options

    try:
        code = main(["headline", "--users", "12", "--days", "6",
                     "--train-days", "3", "--seed", "15",
                     "--trace", "--metrics-out", str(tmp_path)])
    finally:
        # The CLI installs a process default; clear it for later tests.
        set_default_obs_options(None)
    assert code == 0
    out = capsys.readouterr().out
    assert "run artifacts:" in out
    run_dirs = [p for p in tmp_path.iterdir() if p.is_dir()]
    assert len(run_dirs) == 1
    names = {p.name for p in run_dirs[0].iterdir()}
    assert {"manifest.json", "metrics.json", "profile.json",
            "trace.jsonl", "trace.chrome.json"} <= names

    assert main(["obs", "validate",
                 str(run_dirs[0] / "trace.jsonl")]) == 0
    assert main(["obs", "summarize", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    for name in ("exchange.auctions.held", "server.plan.assignments",
                 "server.rescues", "client.beacons", "radio.wakeups"):
        assert name in out


def _metric_lines(out):
    # Drop the trailing "[N shard(s) x M worker(s), T s]" wall-clock line.
    return [line for line in out.splitlines() if "worker(s)" not in line]


def test_headline_with_faults_plan(tmp_path, capsys):
    plan = tmp_path / "plan.json"
    plan.write_text('{"loss_prob": 0.3, "outage_rate_per_day": 4.0, '
                    '"outage_duration_s": 900.0}')
    args = ["headline", "--users", "12", "--days", "6",
            "--train-days", "3", "--seed", "15"]
    assert main(args) == 0
    clean = _metric_lines(capsys.readouterr().out)
    assert main(args + ["--faults", str(plan)]) == 0
    faulty = _metric_lines(capsys.readouterr().out)
    # The plan must change the numbers; omitting it must not.
    assert faulty != clean
    assert any("energy savings" in line for line in faulty)
    assert main(args) == 0
    assert _metric_lines(capsys.readouterr().out) == clean


def test_faults_flag_rejects_bad_plan(tmp_path):
    plan = tmp_path / "plan.json"
    plan.write_text('{"loss_prob": 7.0}')
    with pytest.raises(ValueError):
        main(["headline", "--users", "12", "--days", "6",
              "--train-days", "3", "--faults", str(plan)])


# ---------------------------------------------------------------------
# obs summarize error handling
# ---------------------------------------------------------------------


def test_summarize_missing_path_is_one_line_error(tmp_path, capsys):
    code = main(["obs", "summarize", str(tmp_path / "nowhere")])
    assert code == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "no such file" in err


def test_summarize_empty_metrics_file_is_one_line_error(tmp_path, capsys):
    run_dir = tmp_path / "run-000-headline"
    run_dir.mkdir()
    (run_dir / "manifest.json").write_text("{}")
    (run_dir / "metrics.json").write_text("")
    code = main(["obs", "summarize", str(run_dir)])
    assert code == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "empty metrics file" in err


def test_summarize_schema_mismatch_is_one_line_error(tmp_path, capsys):
    run_dir = tmp_path / "run-000-headline"
    run_dir.mkdir()
    (run_dir / "manifest.json").write_text("{}")
    (run_dir / "metrics.json").write_text('{"unexpected": 1}')
    code = main(["obs", "summarize", str(run_dir)])
    assert code == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "schema mismatch" in err


def test_summarize_invalid_manifest_json_is_one_line_error(tmp_path,
                                                           capsys):
    run_dir = tmp_path / "run-000-headline"
    run_dir.mkdir()
    (run_dir / "manifest.json").write_text("{broken")
    code = main(["obs", "summarize", str(run_dir)])
    assert code == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "not valid JSON" in err


# ---------------------------------------------------------------------
# obs ledger
# ---------------------------------------------------------------------


def _run_with_ledger(path, seed="15"):
    from repro.obs.runtime import set_default_obs_options

    try:
        return main(["headline", "--users", "12", "--days", "6",
                     "--train-days", "3", "--seed", seed,
                     "--ledger", str(path)])
    finally:
        set_default_obs_options(None)


def test_ledger_cli_list_show_regress_round_trip(tmp_path, capsys):
    ledger_path = tmp_path / "ledger.jsonl"
    assert _run_with_ledger(ledger_path) == 0
    assert _run_with_ledger(ledger_path) == 0
    capsys.readouterr()

    assert main(["obs", "ledger", "--ledger-path", str(ledger_path),
                 "list"]) == 0
    out = capsys.readouterr().out
    assert "headline" in out and out.strip().count("\n") == 1

    assert main(["obs", "ledger", "--ledger-path", str(ledger_path),
                 "show", "latest"]) == 0
    out = capsys.readouterr().out
    assert "throughput.users_total" in out
    assert "metrics digest" in out

    assert main(["obs", "ledger", "--ledger-path", str(ledger_path),
                 "diff", "1", "2"]) == 0
    assert "agree" in capsys.readouterr().out

    # A clean re-run regresses clean.
    assert main(["obs", "ledger", "--ledger-path", str(ledger_path),
                 "regress"]) == 0
    assert "PASS" in capsys.readouterr().out


def test_ledger_cli_regress_fails_on_injected_counter_regression(
        tmp_path, capsys):
    import json

    ledger_path = tmp_path / "ledger.jsonl"
    assert _run_with_ledger(ledger_path) == 0
    capsys.readouterr()

    # Forge a "regressed build": same identity, one counter drifted.
    from repro.obs.ledger import Ledger
    ledger = Ledger(ledger_path)
    baseline = ledger.resolve("latest")
    payload = baseline.to_jsonable()
    payload["counter_totals"]["server.rescues"] = (
        payload["counter_totals"].get("server.rescues", 0.0) + 1.0)
    payload["seq"] = baseline.seq + 1
    with ledger_path.open("a") as fh:
        fh.write(json.dumps(payload, sort_keys=True) + "\n")

    code = main(["obs", "ledger", "--ledger-path", str(ledger_path),
                 "regress"])
    assert code == 1
    out = capsys.readouterr().out
    assert "FAIL" in out
    assert "server.rescues" in out


def test_ledger_cli_regress_empty_and_no_baseline(tmp_path, capsys):
    ledger_path = tmp_path / "ledger.jsonl"
    # Missing ledger: hard error.
    assert main(["obs", "ledger", "--ledger-path", str(ledger_path),
                 "regress"]) == 1
    assert "error:" in capsys.readouterr().err

    # One record: nothing to compare — fails unless --allow-empty.
    assert _run_with_ledger(ledger_path) == 0
    capsys.readouterr()
    assert main(["obs", "ledger", "--ledger-path", str(ledger_path),
                 "regress"]) == 1
    assert "no run key had a baseline" in capsys.readouterr().err
    assert main(["obs", "ledger", "--ledger-path", str(ledger_path),
                 "regress", "--allow-empty"]) == 0


def test_ledger_cli_regress_against_explicit_baseline(tmp_path, capsys):
    baseline_path = tmp_path / "baseline.jsonl"
    current_path = tmp_path / "current.jsonl"
    assert _run_with_ledger(baseline_path) == 0
    assert _run_with_ledger(current_path) == 0
    capsys.readouterr()
    assert main(["obs", "ledger", "--ledger-path", str(current_path),
                 "regress", "--baseline", str(baseline_path)]) == 0
    assert "PASS" in capsys.readouterr().out


def test_ledger_cli_show_bad_ref_is_one_line_error(tmp_path, capsys):
    ledger_path = tmp_path / "ledger.jsonl"
    assert _run_with_ledger(ledger_path) == 0
    capsys.readouterr()
    assert main(["obs", "ledger", "--ledger-path", str(ledger_path),
                 "show", "zzzz"]) == 1
    assert capsys.readouterr().err.startswith("error:")
