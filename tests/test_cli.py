"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands_exist():
    parser = build_parser()
    args = parser.parse_args(["run", "e2", "--users", "10"])
    assert args.experiment == "e2"
    assert args.users == 10
    args = parser.parse_args(["headline", "--seed", "3"])
    assert args.seed == 3


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "e99"])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "e1" in out and "e12" in out and "Table 2" in out


def test_run_e2_command(capsys):
    assert main(["run", "e2"]) == 0
    out = capsys.readouterr().out
    assert "per-ad energy" in out
    assert "[e2 took" in out


def test_trace_command(tmp_path, capsys):
    path = tmp_path / "t.jsonl"
    code = main(["trace", str(path), "--users", "12", "--days", "3",
                 "--train-days", "1", "--seed", "21"])
    assert code == 0
    assert path.exists()
    out = capsys.readouterr().out
    assert "12 users" in out

    from repro.traces.io import read_trace
    trace = read_trace(path)
    assert trace.n_users == 12
    assert trace.n_days == 3


def test_report_command_subset(tmp_path, capsys):
    path = tmp_path / "report.md"
    code = main(["report", str(path), "--only", "e2", "--users", "10"])
    assert code == 0
    text = path.read_text()
    assert "Reproduction report" in text
    assert "e2" in text and "per-ad energy" in text


def test_headline_command_small(capsys):
    code = main(["headline", "--users", "12", "--days", "6",
                 "--train-days", "3", "--seed", "15"])
    assert code == 0
    out = capsys.readouterr().out
    assert "energy savings" in out
    assert "SLA violation rate" in out


def test_headline_with_trace_writes_artifacts(tmp_path, capsys):
    from repro.obs.runtime import set_default_obs_options

    try:
        code = main(["headline", "--users", "12", "--days", "6",
                     "--train-days", "3", "--seed", "15",
                     "--trace", "--metrics-out", str(tmp_path)])
    finally:
        # The CLI installs a process default; clear it for later tests.
        set_default_obs_options(None)
    assert code == 0
    out = capsys.readouterr().out
    assert "run artifacts:" in out
    run_dirs = [p for p in tmp_path.iterdir() if p.is_dir()]
    assert len(run_dirs) == 1
    names = {p.name for p in run_dirs[0].iterdir()}
    assert {"manifest.json", "metrics.json", "profile.json",
            "trace.jsonl", "trace.chrome.json"} <= names

    assert main(["obs", "validate",
                 str(run_dirs[0] / "trace.jsonl")]) == 0
    assert main(["obs", "summarize", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    for name in ("exchange.auctions.held", "server.plan.assignments",
                 "server.rescues", "client.beacons", "radio.wakeups"):
        assert name in out


def _metric_lines(out):
    # Drop the trailing "[N shard(s) x M worker(s), T s]" wall-clock line.
    return [line for line in out.splitlines() if "worker(s)" not in line]


def test_headline_with_faults_plan(tmp_path, capsys):
    plan = tmp_path / "plan.json"
    plan.write_text('{"loss_prob": 0.3, "outage_rate_per_day": 4.0, '
                    '"outage_duration_s": 900.0}')
    args = ["headline", "--users", "12", "--days", "6",
            "--train-days", "3", "--seed", "15"]
    assert main(args) == 0
    clean = _metric_lines(capsys.readouterr().out)
    assert main(args + ["--faults", str(plan)]) == 0
    faulty = _metric_lines(capsys.readouterr().out)
    # The plan must change the numbers; omitting it must not.
    assert faulty != clean
    assert any("energy savings" in line for line in faulty)
    assert main(args) == 0
    assert _metric_lines(capsys.readouterr().out) == clean


def test_faults_flag_rejects_bad_plan(tmp_path):
    plan = tmp_path / "plan.json"
    plan.write_text('{"loss_prob": 7.0}')
    with pytest.raises(ValueError):
        main(["headline", "--users", "12", "--days", "6",
              "--train-days", "3", "--faults", str(plan)])
