"""Unit tests for the energy helper functions (E2's building blocks)."""

import pytest

from repro.radio.energy import (
    amortization_series,
    batched_fetch_energy,
    energy_of_schedule,
    energy_per_ad,
    periodic_fetch_energy,
)
from repro.radio.profiles import LTE, THREE_G


def test_periodic_fetches_beyond_tail_cost_full_price_each():
    period = THREE_G.tail_time + 10.0
    total = periodic_fetch_energy(THREE_G, 4000, period, 5)
    assert total == pytest.approx(
        5 * THREE_G.isolated_transfer_energy(4000), rel=1e-6)


def test_periodic_fetches_within_tail_share_costs():
    tight = periodic_fetch_energy(THREE_G, 4000, 3.0, 5)
    loose = periodic_fetch_energy(THREE_G, 4000, THREE_G.tail_time + 5.0, 5)
    assert tight < loose


def test_batched_energy_one_promo_one_tail():
    batch = batched_fetch_energy(THREE_G, 4000, 10)
    expected = (THREE_G.promo_energy
                + 10 * THREE_G.active_power * THREE_G.transfer_time(4000)
                + THREE_G.tail_energy)
    assert batch == pytest.approx(expected)


def test_energy_per_ad_strictly_decreasing_in_batch():
    series = amortization_series(THREE_G, 4000, [1, 2, 5, 10, 20])
    values = [v for _, v in series]
    assert all(a > b for a, b in zip(values, values[1:]))
    assert series[0][1] == pytest.approx(THREE_G.isolated_transfer_energy(4000))


def test_amortization_is_large_for_cellular():
    per_1 = energy_per_ad(THREE_G, 4000, 1)
    per_20 = energy_per_ad(THREE_G, 4000, 20)
    assert per_1 / per_20 > 5.0
    per_1_lte = energy_per_ad(LTE, 4000, 1)
    per_20_lte = energy_per_ad(LTE, 4000, 20)
    assert per_1_lte / per_20_lte > 5.0


def test_energy_per_ad_rejects_non_positive_batch():
    with pytest.raises(ValueError):
        energy_per_ad(THREE_G, 4000, 0)


def test_zero_counts_cost_nothing():
    assert periodic_fetch_energy(THREE_G, 4000, 30.0, 0) == 0.0
    assert batched_fetch_energy(THREE_G, 4000, 0) == 0.0


def test_energy_of_schedule_splits_tags():
    fetches = [(0.0, 4000, "ad"), (120.0, 9000, "app"), (240.0, 4000, "ad")]
    by_tag = energy_of_schedule(THREE_G, fetches)
    assert set(by_tag) == {"ad", "app"}
    assert by_tag["ad"] == pytest.approx(
        2 * THREE_G.isolated_transfer_energy(4000))
