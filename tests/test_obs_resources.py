"""Property tests for ResourceTelemetry JSON round-tripping.

Satellite of the live-telemetry PR: ``from_jsonable`` must invert
``to_jsonable`` for every representable telemetry value, and malformed
payloads must fail with a one-line error naming the bad field instead
of silently coercing to an idle-looking record.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.resources import ResourceTelemetry, collect_telemetry

_seconds = st.floats(min_value=0.0, max_value=1e9,
                     allow_nan=False, allow_infinity=False)
_totals = st.floats(min_value=0.0, max_value=1e12,
                    allow_nan=False, allow_infinity=False)


@given(peak_rss_bytes=st.integers(min_value=0, max_value=2**48),
       cpu_time_s=_seconds, elapsed_s=_seconds,
       users_total=_totals, events_total=_totals)
def test_round_trip_is_identity(peak_rss_bytes, cpu_time_s, elapsed_s,
                                users_total, events_total):
    telemetry = ResourceTelemetry(
        peak_rss_bytes=peak_rss_bytes, cpu_time_s=cpu_time_s,
        elapsed_s=elapsed_s, users_total=users_total,
        events_total=events_total)
    back = ResourceTelemetry.from_jsonable(telemetry.to_jsonable())
    assert back == telemetry
    # Derived rates are recomputed, not trusted from the payload.
    assert math.isclose(back.users_per_sec, telemetry.users_per_sec)
    assert math.isclose(back.events_per_sec, telemetry.events_per_sec)


@given(payload=st.dictionaries(
    st.sampled_from(["peak_rss_bytes", "cpu_time_s", "elapsed_s",
                     "users_total", "events_total"]),
    st.just(None), min_size=0, max_size=5))
def test_missing_keys_keep_defaults(payload):
    """Absent keys default; only *present* junk raises (old files load)."""
    keys = set(payload)
    clean: dict[str, object] = {}
    telemetry = ResourceTelemetry.from_jsonable(clean)
    assert telemetry == ResourceTelemetry()
    if keys:  # the same keys present-with-junk must raise instead
        with pytest.raises(ValueError):
            ResourceTelemetry.from_jsonable({k: None for k in keys})


@pytest.mark.parametrize("key", ["cpu_time_s", "elapsed_s",
                                 "users_total", "events_total"])
@pytest.mark.parametrize("junk", ["12.5", None, [1.0], {}, True, False])
def test_wrong_typed_number_raises_one_line(key, junk):
    payload = ResourceTelemetry().to_jsonable()
    payload[key] = junk
    with pytest.raises(ValueError) as excinfo:
        ResourceTelemetry.from_jsonable(payload)
    message = str(excinfo.value)
    assert key in message and "must be a number" in message
    assert "\n" not in message


@pytest.mark.parametrize("junk", ["4096", 12.5, None, True])
def test_wrong_typed_rss_raises_one_line(junk):
    payload = ResourceTelemetry().to_jsonable()
    payload["peak_rss_bytes"] = junk
    with pytest.raises(ValueError) as excinfo:
        ResourceTelemetry.from_jsonable(payload)
    message = str(excinfo.value)
    assert "peak_rss_bytes" in message and "must be an int" in message
    assert "\n" not in message


def test_collected_telemetry_round_trips():
    telemetry = collect_telemetry(elapsed_s=1.5, users_total=10,
                                  events_total=2000)
    back = ResourceTelemetry.from_jsonable(telemetry.to_jsonable())
    assert back == telemetry
    assert back.events_per_sec == pytest.approx(2000 / 1.5)
