"""repro.obs.trace: recorders, JSONL schema, Chrome export golden."""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.trace import (
    NULL_RECORDER,
    TRACE_SCHEMA_VERSION,
    MemoryRecorder,
    NullRecorder,
    TraceEvent,
    read_jsonl,
    to_chrome,
    validate_jsonl,
    validate_rows,
    write_chrome,
    write_jsonl,
)

GOLDEN = Path(__file__).parent / "data" / "obs_chrome_golden.json"


def _sample_events() -> list[TraceEvent]:
    """A small fixed event stream covering spans, instants, and shards."""
    return [
        TraceEvent(ts=0.0, phase="X", component="engine", name="run",
                   dur=3600.0, shard=0, args={"n_events": 42}),
        TraceEvent(ts=12.5, phase="I", component="client", name="sync",
                   shard=0, args={"user": "u0001", "n_bytes": 2048}),
        TraceEvent(ts=60.0, phase="I", component="server", name="rescue",
                   shard=1, args={"n": 2}),
        TraceEvent(ts=90.0, phase="X", component="server", name="epoch",
                   dur=900.0, shard=1, args={"epoch": 0}),
    ]


class TestNullRecorder:
    def test_disabled_and_stateless(self):
        assert NullRecorder.enabled is False
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.instant(1.0, "server", "rescue", {"n": 1})
        NULL_RECORDER.complete(0.0, 5.0, "engine", "run")
        assert NULL_RECORDER.events() == []

    def test_zero_overhead_fast_path_shape(self):
        # ``enabled`` is a class attribute (no per-instance state), so
        # the ``if recorder.enabled:`` guard in hot paths costs one
        # attribute read and the event payload is never built.
        assert "enabled" not in vars(NULL_RECORDER)
        assert "enabled" in vars(NullRecorder) or NullRecorder.enabled is False

    def test_guarded_hot_path_never_records(self):
        recorder = NULL_RECORDER
        built = []
        for i in range(100):
            if recorder.enabled:  # pragma: no cover - must not execute
                built.append({"i": i})
                recorder.instant(float(i), "engine", "tick", built[-1])
        assert built == []


class TestMemoryRecorder:
    def test_records_in_order_with_shard_stamp(self):
        rec = MemoryRecorder(shard=3)
        rec.instant(1.0, "client", "beacon")
        rec.complete(2.0, 0.5, "server", "epoch", {"epoch": 1})
        events = rec.events()
        assert [e.name for e in events] == ["beacon", "epoch"]
        assert all(e.shard == 3 for e in events)
        assert events[1].phase == "X"
        assert events[1].dur == 0.5

    def test_events_returns_a_copy(self):
        rec = MemoryRecorder()
        rec.instant(0.0, "a", "b")
        rec.events().clear()
        assert len(rec.events()) == 1


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        events = _sample_events()
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(events, path) == len(events)
        assert read_jsonl(path) == events

    def test_header_row(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl([], path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"schema": "repro.obs.trace",
                          "version": TRACE_SCHEMA_VERSION}

    def test_byte_stable_for_identical_streams(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_jsonl(_sample_events(), a)
        write_jsonl(_sample_events(), b)
        assert a.read_bytes() == b.read_bytes()

    def test_validate_accepts_written_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(_sample_events(), path)
        assert validate_jsonl(path) == []

    def test_validate_rejects_bad_rows(self):
        header = {"schema": "repro.obs.trace",
                  "version": TRACE_SCHEMA_VERSION}
        ok = _sample_events()[0].to_jsonable()
        bad_phase = dict(ok, ph="Z")
        negative_ts = dict(ok, ts=-1.0)
        missing = {k: v for k, v in ok.items() if k != "comp"}
        problems = validate_rows([header, bad_phase, negative_ts, missing])
        text = "\n".join(problems)
        assert "ph must be one of" in text
        assert "ts must be a non-negative number" in text
        assert "missing key 'comp'" in text

    def test_validate_rejects_headerless_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(_sample_events()[0].to_jsonable()) + "\n")
        assert any("header" in p for p in validate_jsonl(path))

    def test_validate_rejects_wrong_version(self):
        problems = validate_rows([{"schema": "repro.obs.trace",
                                   "version": 999}])
        assert any("version" in p for p in problems)


class TestChromeExport:
    def test_matches_golden_file(self):
        # Regenerate with:
        #   python -c "from tests.test_obs_trace import regenerate_golden;
        #              regenerate_golden()"
        produced = to_chrome(_sample_events())
        assert produced == json.loads(GOLDEN.read_text())

    def test_structure(self, tmp_path):
        doc = to_chrome(_sample_events())
        rows = doc["traceEvents"]
        meta = [r for r in rows if r["ph"] == "M"]
        spans = [r for r in rows if r["ph"] == "X"]
        instants = [r for r in rows if r["ph"] == "i"]
        # Two shards x (1 process_name + 3 thread_name) metadata rows.
        assert len(meta) == 2 * 4
        assert {r["pid"] for r in rows} == {0, 1}
        assert len(spans) == 2 and len(instants) == 2
        # Sim seconds are exported as microseconds.
        engine_run = next(r for r in spans if r["name"] == "run")
        assert engine_run["dur"] == 3600.0 * 1e6
        assert all(r["s"] == "t" for r in instants)
        write_chrome(_sample_events(), tmp_path / "t.json")
        assert json.loads((tmp_path / "t.json").read_text()) == doc


def regenerate_golden() -> None:
    """Rewrite the committed golden file from the current exporter."""
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(json.dumps(to_chrome(_sample_events()), indent=2,
                                 sort_keys=True) + "\n")
