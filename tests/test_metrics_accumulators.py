"""Property tests: accumulator merge() is associative with identity."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.revenue import RevenueReport
from repro.core.sla import SlaReport
from repro.metrics.accumulators import (
    EnergyAccumulator,
    MeanAccumulator,
    RevenueAccumulator,
    SlaAccumulator,
)
from repro.metrics.energy import EnergyReport

finite = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
counts = st.integers(min_value=0, max_value=10**6)

energy_accs = st.builds(EnergyAccumulator, ad_joules=finite,
                        app_joules=finite, wakeups=counts, ad_bytes=counts,
                        app_bytes=counts, n_users=counts)
sla_accs = st.builds(SlaAccumulator, n_sales=counts, n_on_time=counts,
                     n_violated=counts, n_duplicates=counts,
                     latency_sum_s=finite, n_latencies=counts)
revenue_accs = st.builds(RevenueAccumulator, billed_prefetch=finite,
                         billed_fallback=finite, voided=finite,
                         duplicate_impressions=counts,
                         duplicate_opportunity_cost=finite,
                         paid_impressions=counts,
                         fallback_impressions=counts, unfilled_slots=counts)
mean_accs = st.builds(MeanAccumulator, total=finite, weight=finite)


def _int_fields(acc):
    return {f: getattr(acc, f) for f in acc.__dataclass_fields__
            if isinstance(getattr(acc, f), int)}


def _float_fields(acc):
    return {f: getattr(acc, f) for f in acc.__dataclass_fields__
            if isinstance(getattr(acc, f), float)}


def _assert_close(left, right):
    assert _int_fields(left) == _int_fields(right)
    lf, rf = _float_fields(left), _float_fields(right)
    assert lf.keys() == rf.keys()
    for key in lf:
        # Float addition is associative only up to rounding; the runner
        # always folds in shard-index order, so exactness across fold
        # shapes is not required — closeness is.
        assert abs(lf[key] - rf[key]) <= 1e-6 * max(1.0, abs(lf[key]))


@given(energy_accs, energy_accs, energy_accs)
def test_energy_merge_associative(a, b, c):
    _assert_close(a.merge(b).merge(c), a.merge(b.merge(c)))
    assert a.merge(EnergyAccumulator()) == a


@given(sla_accs, sla_accs, sla_accs)
def test_sla_merge_associative(a, b, c):
    _assert_close(a.merge(b).merge(c), a.merge(b.merge(c)))
    assert a.merge(SlaAccumulator()) == a


@given(revenue_accs, revenue_accs, revenue_accs)
def test_revenue_merge_associative(a, b, c):
    _assert_close(a.merge(b).merge(c), a.merge(b.merge(c)))
    assert a.merge(RevenueAccumulator()) == a


@given(mean_accs, mean_accs, mean_accs)
def test_mean_merge_associative(a, b, c):
    _assert_close(a.merge(b).merge(c), a.merge(b.merge(c)))
    assert a.merge(MeanAccumulator()) == a


def test_energy_roundtrip_through_report():
    report = EnergyReport(ad_joules=12.5, app_joules=40.0, wakeups=7,
                          ad_bytes=1000, app_bytes=9000, n_users=3, days=2.0)
    acc = EnergyAccumulator.from_report(report)
    assert acc.finalize(days=2.0) == report


def test_sla_finalize_reweights_latency_mean():
    # Two shards with different on-time counts: the merged mean must be
    # the sample-weighted mean, not the mean of means.
    left = SlaAccumulator.from_report(SlaReport(
        n_sales=4, n_on_time=3, n_violated=1, n_duplicates=0,
        mean_latency_s=10.0))
    right = SlaAccumulator.from_report(SlaReport(
        n_sales=1, n_on_time=1, n_violated=0, n_duplicates=0,
        mean_latency_s=50.0))
    merged = left.merge(right).finalize()
    assert merged.n_sales == 5 and merged.n_on_time == 4
    assert merged.mean_latency_s == (3 * 10.0 + 1 * 50.0) / 4


def test_revenue_roundtrip_through_report():
    report = RevenueReport(billed_prefetch=10.0, billed_fallback=2.0,
                           voided=1.0, duplicate_impressions=3,
                           duplicate_opportunity_cost=0.5,
                           paid_impressions=20, fallback_impressions=4,
                           unfilled_slots=1)
    acc = RevenueAccumulator.from_report(report)
    assert acc.finalize() == report


def test_mean_accumulator_handles_zero_weight():
    assert MeanAccumulator().finalize(default=1.0) == 1.0
    assert MeanAccumulator.from_mean(3.0, 2.0).finalize() == 3.0
