"""Property-based equivalence: the batched backend vs the event engine.

:data:`repro.sim.batched.DEFAULT_CONTRACT` claims the batched backend
reproduces the event engine bit for bit on every reported metric. These
tests attack that claim from both ends — unit-level drop-in components
against their event-engine counterparts on randomized inputs, and whole
headline executions across randomized configs, seeds, and fault plans
at parallelism 1 and 4.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client.device import Device
from repro.core.showcurve import DispatchCurve, WindowedShowCurveEstimator
from repro.exchange.auction import AuctionConfig
from repro.exchange.campaign import ANY, Campaign
from repro.exchange.marketplace import Exchange
from repro.experiments.config import ExperimentConfig
from repro.faults.plan import FaultPlan
from repro.radio.profiles import THREE_G, WIFI
from repro.runner import Runner
from repro.sim.batched import (
    DEFAULT_CONTRACT,
    BatchedExchange,
    CachedCurve,
    LogDevice,
    assert_equivalent,
    contract_violations,
    prefetch_metrics,
    realtime_metrics,
)
from repro.sim.rng import RngRegistry

# ----------------------------------------------------------------------
# LogDevice vs Device: the radio settlement recurrence
# ----------------------------------------------------------------------

_transfer_steps = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=30.0,
                  allow_nan=False, allow_infinity=False),     # request gap
        st.sampled_from(["ad", "ad+latency", "app", "stream"]),
        st.integers(min_value=1, max_value=200_000),          # nbytes
    ),
    min_size=1, max_size=40)


@given(steps=_transfer_steps, wifi=st.booleans(),
       horizon_extra=st.floats(min_value=0.0, max_value=60.0,
                               allow_nan=False, allow_infinity=False))
@settings(max_examples=60, deadline=None)
def test_log_device_matches_event_device(steps, wifi, horizon_extra):
    """Identical transfer schedules settle to bitwise-equal energy."""
    profile = WIFI if wifi else THREE_G
    event = Device("u", profile)
    batched = LogDevice("u", profile)
    now = 0.0
    for gap, kind, nbytes in steps:
        now += gap
        if kind == "ad":
            event.ad_fetch(now, nbytes)
            batched.ad_fetch(now, nbytes)
        elif kind == "ad+latency":
            event.ad_fetch(now, nbytes, extra_s=7.5)
            batched.ad_fetch(now, nbytes, extra_s=7.5)
        elif kind == "app":
            event.app_request(now, nbytes)
            batched.app_request(now, nbytes)
        else:
            duration = nbytes / 50_000.0
            event.app_streaming(now, duration)
            batched.app_streaming(now, duration)
    horizon = now + horizon_extra
    event.finish(horizon)
    batched.finish(horizon)
    # Bitwise equality — the contract's EXACT tier, not approx.
    assert batched.energy_by_tag() == event.radio.energy_by_tag()
    assert batched.wakeups == event.wakeups
    assert batched.transfer_count == event.radio.transfer_count
    assert batched.ad_bytes == event.ad_bytes
    assert batched.app_bytes == event.app_bytes


def test_log_device_refuses_timeline_instrumentation():
    with pytest.raises(ValueError, match="timeline"):
        LogDevice("u", THREE_G, keep_timeline=True)


# ----------------------------------------------------------------------
# BatchedExchange vs Exchange: demand-side views and sale sequences
# ----------------------------------------------------------------------

_campaign_specs = st.lists(
    st.tuples(
        st.sampled_from(["news", "games", ANY]),              # category
        st.sampled_from(["android", "ios", ANY]),             # platform
        st.floats(min_value=0.1, max_value=5.0,
                  allow_nan=False, allow_infinity=False),     # bid
        st.floats(min_value=0.5, max_value=50.0,
                  allow_nan=False, allow_infinity=False),     # budget
    ),
    min_size=1, max_size=12)

_sell_ops = st.lists(
    st.tuples(
        st.sampled_from(["now", "ahead"]),
        st.sampled_from(["news", "games", ANY]),              # category
        st.sampled_from(["android", "ios", ANY]),             # platform
        st.integers(min_value=1, max_value=5),                # batch size
    ),
    min_size=1, max_size=30)


def _pool(specs):
    return [Campaign(f"c{i}", f"adv{i}", bid, budget,
                     category=category, platform=platform)
            for i, (category, platform, bid, budget) in enumerate(specs)]


@given(specs=_campaign_specs, ops=_sell_ops, seed=st.integers(0, 2**31))
@settings(max_examples=50, deadline=None)
def test_batched_exchange_matches_event_exchange(specs, ops, seed):
    """Same ops, same RNG stream: identical sales, budgets, and views."""
    event = Exchange(_pool(specs), AuctionConfig(),
                     RngRegistry(seed).fresh("x"))
    batched = BatchedExchange(_pool(specs), AuctionConfig(),
                              RngRegistry(seed).fresh("x"))
    now = 0.0
    for op, category, platform, count in ops:
        now += 60.0
        if op == "now":
            a = event.sell_now(now, category=category, platform=platform)
            b = batched.sell_now(now, category=category, platform=platform)
            sales_a = [] if a is None else [a]
            sales_b = [] if b is None else [b]
        else:
            sales_a = event.sell_ahead(now, count, deadline=now + 3600.0,
                                       platform=platform)
            sales_b = batched.sell_ahead(now, count, deadline=now + 3600.0,
                                         platform=platform)
        assert sales_a == sales_b
        # Occasionally refund a sale through both sides.
        if sales_a and count == 1:
            event.settle_violated(sales_a[0])
            batched.settle_violated(sales_b[0])
        assert ([c.campaign_id for c in
                 event.eligible(category, platform)]
                == [c.campaign_id for c in
                    batched.eligible(category, platform)])
        assert event.active_campaigns() == batched.active_campaigns()
    spent_a = {c.campaign_id: c.spent for c in event.campaigns}
    spent_b = {c.campaign_id: c.spent for c in batched.campaigns}
    assert spent_a == spent_b


# ----------------------------------------------------------------------
# CachedCurve vs DispatchCurve: saturated-bucket memoization
# ----------------------------------------------------------------------

_observations = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=12.0,
                        allow_nan=False, allow_infinity=False),
              st.integers(min_value=0, max_value=15)),
    min_size=0, max_size=200)

_queries = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=12.0,
                        allow_nan=False, allow_infinity=False),
              st.integers(min_value=0, max_value=12)),
    min_size=1, max_size=40)


@given(obs=_observations, queries=_queries)
@settings(max_examples=50, deadline=None)
def test_cached_curve_matches_exact_curve(obs, queries):
    """Memoized lookups equal the exact estimator on every query."""
    windowed = WindowedShowCurveEstimator(max_window=4, min_samples=5)
    for predicted, actual in obs:
        windowed.observe("u", predicted, actual)
    exact = DispatchCurve(windowed, sla_window=4)
    cached = CachedCurve(DispatchCurve(windowed, sla_window=4))
    for predicted, j in queries:
        assert cached.sla(predicted, j) == exact.sla(predicted, j)
        assert cached.epoch(predicted, j) == exact.epoch(predicted, j)
        assert cached.at_least(predicted, j) == exact.at_least(predicted, j)
    # New observations invalidate the memo; answers must track.
    for predicted, actual in obs[:20]:
        windowed.observe("v", predicted, actual + 1)
    cached.invalidate()
    for predicted, j in queries:
        assert cached.sla(predicted, j) == exact.sla(predicted, j)


# ----------------------------------------------------------------------
# Whole-shard equivalence: randomized worlds, seeds, and fault plans
# ----------------------------------------------------------------------

_fault_plans = st.one_of(
    st.just(FaultPlan()),
    st.builds(FaultPlan,
              loss_prob=st.sampled_from([0.0, 0.15]),
              outage_rate_per_day=st.sampled_from([0.0, 2.0]),
              outage_duration_s=st.just(600.0),
              latency_mean_s=st.sampled_from([0.0, 10.0]),
              churn_prob=st.sampled_from([0.0, 0.05])))

_world_params = st.fixed_dictionaries({
    "n_users": st.integers(min_value=5, max_value=12),
    "seed": st.integers(min_value=0, max_value=10_000),
    "epsilon": st.sampled_from([0.02, 0.1, 0.3]),
    "max_replicas": st.sampled_from([1, 2, 4]),
    "wifi_fraction": st.sampled_from([0.0, 0.4]),
})


@given(params=_world_params, faults=_fault_plans)
@settings(max_examples=6, deadline=None)
def test_backends_agree_on_random_worlds(params, faults):
    """Full headline runs are bit-identical across backends, and the
    flattened metrics satisfy the published tolerance contract."""
    config = ExperimentConfig(n_days=4, train_days=2, faults=faults,
                              **params)
    event = Runner(config, backend="event").run("headline")
    batched = Runner(config, backend="batched").run("headline")
    assert batched.prefetch == event.prefetch
    assert batched.realtime == event.realtime
    assert batched.comparison == event.comparison
    assert_equivalent(
        {**prefetch_metrics(event.prefetch),
         **realtime_metrics(event.realtime)},
        {**prefetch_metrics(batched.prefetch),
         **realtime_metrics(batched.realtime)})
    # Backend parity of the throughput counters: both backends drive
    # the same orchestration loops, so the totals agree exactly.
    for name in ("throughput.users_total", "throughput.events_total"):
        assert event.metrics.counters[name] > 0
        assert (batched.metrics.counters[name]
                == event.metrics.counters[name])


def test_backends_agree_under_sharded_parallel_runs(tiny_config, tiny_world):
    """Equivalence holds shard by shard, at jobs 1 and jobs 4 alike."""
    results = {}
    for backend in ("event", "batched"):
        serial = Runner(tiny_config, parallelism=1, shards=4,
                        backend=backend, world=tiny_world).run("headline")
        parallel = Runner(tiny_config, parallelism=4, shards=4,
                          backend=backend, world=tiny_world).run("headline")
        assert serial.prefetch == parallel.prefetch
        assert serial.realtime == parallel.realtime
        results[backend] = serial
    assert results["batched"].prefetch == results["event"].prefetch
    assert results["batched"].realtime == results["event"].realtime
    assert results["batched"].comparison == results["event"].comparison
    assert not contract_violations(
        prefetch_metrics(results["event"].prefetch),
        prefetch_metrics(results["batched"].prefetch))
    for name in ("throughput.users_total", "throughput.events_total"):
        assert results["event"].metrics.counters[name] > 0
        assert (results["batched"].metrics.counters[name]
                == results["event"].metrics.counters[name])


def test_contract_digest_is_pinned_in_batched_manifests(tiny_config,
                                                        tiny_world):
    """A batched run records the contract hash it claims to satisfy."""
    batched = Runner(tiny_config, backend="batched",
                     world=tiny_world).run("realtime")
    event = Runner(tiny_config, backend="event",
                   world=tiny_world).run("realtime")
    assert batched.manifest.backend == "batched"
    assert batched.manifest.equivalence_contract_hash == \
        DEFAULT_CONTRACT.digest()
    assert event.manifest.backend == "event"
    assert event.manifest.equivalence_contract_hash is None


def test_contract_detects_out_of_tolerance_metrics():
    base = {"prefetch.energy.ad_joules": 100.0, "prefetch.syncs": 5.0}
    # Within FLOAT_SUM headroom on the float metric: passes.
    assert not contract_violations(
        base, {**base, "prefetch.energy.ad_joules": 100.0 * (1 + 1e-12)})
    # Integer counters are EXACT: any drift is a violation.
    assert contract_violations(base, {**base, "prefetch.syncs": 6.0})
    # Past the float tolerance: reported with both values.
    problems = contract_violations(
        base, {**base, "prefetch.energy.ad_joules": 101.0})
    assert problems and "ad_joules" in problems[0]
    with pytest.raises(AssertionError, match="equivalence"):
        assert_equivalent(base, {**base, "prefetch.syncs": 6.0})
