"""Unit tests for the client ad cache."""

from repro.core.overbooking import Assignment
from repro.exchange.marketplace import Sale
from repro.client.cache import AdQueue


def _assignment(sale_id, deadline=100.0, active_from=0.0,
                nbytes=4000) -> Assignment:
    sale = Sale(sale_id=sale_id, campaign_id="c", price=1.0,
                creative_bytes=nbytes, sold_at=0.0, deadline=deadline)
    return Assignment(sale, active_from=active_from)


def test_install_and_fifo_pop():
    q = AdQueue()
    nbytes = q.install([_assignment(1), _assignment(2)])
    assert nbytes == 8000
    assert len(q) == 2
    assert q.pop_for_display(10.0).sale_id == 1
    assert q.pop_for_display(10.0).sale_id == 2
    assert q.pop_for_display(10.0) is None
    assert q.stats.displayed == 2
    assert q.stats.installed == 2
    assert q.stats.bytes_installed == 8000


def test_pop_skips_and_drops_expired():
    q = AdQueue()
    q.install([_assignment(1, deadline=5.0), _assignment(2, deadline=100.0)])
    sale = q.pop_for_display(50.0)
    assert sale.sale_id == 2
    assert q.stats.expired == 1


def test_pop_keeps_standby_entries():
    q = AdQueue()
    q.install([_assignment(1, active_from=60.0), _assignment(2)])
    # At t=10 the standby entry is skipped but retained.
    assert q.pop_for_display(10.0).sale_id == 2
    assert len(q) == 1
    # After activation it becomes displayable, in original order.
    assert q.pop_for_display(70.0).sale_id == 1


def test_standby_order_preserved_after_skip():
    q = AdQueue()
    q.install([_assignment(1, active_from=60.0),
               _assignment(2, active_from=60.0),
               _assignment(3)])
    assert q.pop_for_display(10.0).sale_id == 3
    assert q.peek_ids() == [1, 2]
    assert q.pop_for_display(70.0).sale_id == 1


def test_invalidate_removes_shown_ids():
    q = AdQueue()
    q.install([_assignment(i) for i in range(5)])
    removed = q.invalidate({1, 3, 99})
    assert removed == 2
    assert q.peek_ids() == [0, 2, 4]
    assert q.stats.invalidated == 2
    assert q.invalidate(set()) == 0


def test_drop_expired_bulk():
    q = AdQueue()
    q.install([_assignment(1, deadline=10.0), _assignment(2, deadline=20.0),
               _assignment(3, deadline=30.0)])
    assert q.drop_expired(25.0) == 2
    assert q.peek_ids() == [3]
    assert q.stats.expired == 2


def test_wasted_counts_expired_plus_invalidated():
    q = AdQueue()
    q.install([_assignment(1, deadline=1.0), _assignment(2)])
    q.drop_expired(5.0)
    q.invalidate({2})
    assert q.stats.wasted == 2
