"""Tests for trace-generator calibration."""

import pytest

from repro.traces.calibration import (
    CalibrationTarget,
    calibrate,
)


def test_target_validation():
    with pytest.raises(ValueError):
        CalibrationTarget(0.0, 0.7)
    with pytest.raises(ValueError):
        CalibrationTarget(100.0, 1.5)
    with pytest.raises(ValueError):
        CalibrationTarget(100.0, 0.7, tolerance=0.0)


def test_calibration_hits_moderate_target():
    target = CalibrationTarget(median_slots_per_user_day=100.0,
                               day_over_day_autocorrelation=0.7,
                               tolerance=0.35)
    result = calibrate(target, n_users=40, n_days=5,
                       session_grid=(6.0, 9.0, 13.0),
                       noise_grid=(0.3, 0.6))
    assert result.within(target)
    assert result.error < 0.5


def test_calibration_moves_volume_with_target():
    light = calibrate(CalibrationTarget(40.0, 0.7), n_users=30, n_days=4,
                      session_grid=(3.0, 9.0, 18.0), noise_grid=(0.4,))
    heavy = calibrate(CalibrationTarget(200.0, 0.7), n_users=30, n_days=4,
                      session_grid=(3.0, 9.0, 18.0), noise_grid=(0.4,))
    assert (light.config.median_sessions_per_day
            < heavy.config.median_sessions_per_day)
    assert light.measured_median < heavy.measured_median
