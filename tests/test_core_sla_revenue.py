"""Unit tests for SLA and revenue settlement."""

import pytest

from repro.core.revenue import settle_revenue
from repro.core.sla import DisplayLog, settle_sla
from repro.exchange.auction import AuctionConfig
from repro.exchange.campaign import Campaign
from repro.exchange.marketplace import Exchange, Sale
from repro.sim.rng import RngRegistry


def _sale(sale_id, price=2.0, sold_at=0.0, deadline=100.0,
          campaign="c0") -> Sale:
    return Sale(sale_id=sale_id, campaign_id=campaign, price=price,
                sold_at=sold_at, deadline=deadline, creative_bytes=4000)


def test_display_log_groups_and_sorts():
    log = DisplayLog()
    log.record(1, "b", 50.0)
    log.record(1, "a", 10.0)
    log.record(2, "c", 5.0)
    grouped = log.by_sale()
    assert grouped[1] == [(10.0, "a"), (50.0, "b")]
    assert len(log) == 3


def test_settle_sla_classifies_outcomes():
    sales = [_sale(0), _sale(1), _sale(2, deadline=20.0)]
    log = DisplayLog()
    log.record(0, "a", 30.0)            # on time
    log.record(0, "b", 40.0)            # duplicate
    log.record(2, "a", 25.0)            # after its deadline -> violated
    outcomes, report = settle_sla(sales, log)
    assert [o.on_time for o in outcomes] == [True, False, False]
    assert outcomes[0].duplicates == 1
    assert outcomes[0].latency == pytest.approx(30.0)
    assert report.n_sales == 3
    assert report.n_on_time == 1
    assert report.n_violated == 2
    assert report.violation_rate == pytest.approx(2 / 3)
    # Only displays beyond a sale's first count as duplicates; sale 2's
    # single (late) display is a violation, not a duplicate.
    assert report.n_duplicates == 1
    assert report.mean_latency_s == pytest.approx(30.0)


def test_settle_sla_empty():
    outcomes, report = settle_sla([], DisplayLog())
    assert outcomes == [] and report.violation_rate == 0.0


def _exchange_with(sales_prices):
    campaigns = [Campaign("c0", "a", bid=3.0, budget=1e9)]
    ex = Exchange(campaigns, AuctionConfig(bid_jitter_sigma=1e-9),
                  RngRegistry(1).fresh("x"))
    # Register booked revenue (and the matching committed budget, as
    # sell_ahead would) so settlement/refunds behave as in production.
    for price in sales_prices:
        ex.booked_revenue += price
        ex.sales_count += 1
        campaigns[0].charge(price)
    return ex


def test_settle_revenue_accounting():
    sales = [_sale(0, price=4.0), _sale(1, price=2.0)]
    log = DisplayLog()
    log.record(0, "a", 10.0)
    log.record(0, "b", 20.0)   # duplicate
    outcomes, _ = settle_sla(sales, log)
    ex = _exchange_with([4.0, 2.0])
    report = settle_revenue(outcomes, ex, billed_fallback=5.0,
                            fallback_impressions=3, unfilled_slots=1)
    assert report.billed_prefetch == pytest.approx(4.0)
    assert report.voided == pytest.approx(2.0)
    assert report.duplicate_impressions == 1
    assert report.duplicate_opportunity_cost == pytest.approx(3.0)
    assert report.total_billed == pytest.approx(9.0)
    assert report.paid_impressions == 1
    assert ex.billed_revenue == pytest.approx(4.0)
    assert ex.voided_revenue == pytest.approx(2.0)
    # The voided sale's budget was refunded; the shown one stays spent.
    assert ex.campaign("c0").spent == pytest.approx(4.0)


def test_revenue_loss_metrics():
    sales = [_sale(0, price=4.0)]
    log = DisplayLog()
    log.record(0, "a", 10.0)
    outcomes, _ = settle_sla(sales, log)
    report = settle_revenue(outcomes, _exchange_with([4.0]),
                            billed_fallback=0.0, fallback_impressions=0,
                            unfilled_slots=0)
    assert report.internal_loss_rate == pytest.approx(0.0)
    assert report.loss_vs(8.0) == pytest.approx(0.5)
    assert report.loss_vs(0.0) == 0.0
