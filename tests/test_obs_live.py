"""Tests for the live telemetry plane (repro.obs.live).

Covers the beat record round-trip, the wall-clock-throttled emitter,
the straggler/stall watchdog under an injected fake clock, the
progress renderer's TTY/pipe modes, and — the hard invariant — that
runs with live telemetry on are bit-identical to runs with it off at
jobs 1 and 4.
"""

from __future__ import annotations

import io

import pytest

from repro.obs.ledger import snapshot_digest
from repro.obs.live import (
    BeatEmitter,
    CallbackTransport,
    LiveAggregator,
    LiveOptions,
    LivePlane,
    NullBeatEmitter,
    ProgressRenderer,
    ShardBeat,
    StragglerEvent,
    render_progress,
    shard_heartbeat,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import Obs, ObsOptions
from repro.obs.trace import MemoryRecorder
from repro.runner import Runner


class FakeClock:
    """Deterministic monotonic clock for watchdog/throttle tests."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# ---------------------------------------------------------------------
# ShardBeat record
# ---------------------------------------------------------------------


def test_shard_beat_round_trip():
    beat = ShardBeat(shard_index=3, n_shards=8, seq=5, watermark_s=86400.0,
                     done=4, total=10, users=50, events_done=1234,
                     counters={"throughput.events_total": 17.0},
                     rss_bytes=1 << 20, final=True)
    assert ShardBeat.from_jsonable(beat.to_jsonable()) == beat


@pytest.mark.parametrize("field,value", [
    ("shard_index", "three"), ("seq", 1.5), ("watermark_s", "soon"),
    ("counters", [1, 2]), ("done", True),
])
def test_shard_beat_from_jsonable_rejects_wrong_types(field, value):
    payload = ShardBeat(shard_index=0, n_shards=1, seq=0,
                        watermark_s=0.0).to_jsonable()
    payload[field] = value
    with pytest.raises(ValueError, match=field):
        ShardBeat.from_jsonable(payload)


# ---------------------------------------------------------------------
# BeatEmitter: throttle, counter deltas, forced beats
# ---------------------------------------------------------------------


def test_emitter_throttles_on_wall_clock():
    clock = FakeClock()
    seen: list[ShardBeat] = []
    emitter = BeatEmitter(CallbackTransport(seen.append), shard_index=0,
                          n_shards=2, interval_s=10.0, clock=clock)
    assert emitter.beat(100.0) is not None       # first beat passes
    clock.advance(5.0)
    assert emitter.beat(200.0) is None           # throttled
    clock.advance(6.0)
    assert emitter.beat(300.0) is not None       # window elapsed
    assert [b.watermark_s for b in seen] == [100.0, 300.0]
    assert [b.seq for b in seen] == [0, 1]       # seq counts published only


def test_emitter_forced_and_final_bypass_throttle():
    clock = FakeClock()
    seen: list[ShardBeat] = []
    emitter = BeatEmitter(CallbackTransport(seen.append), shard_index=1,
                          n_shards=2, interval_s=1e9, clock=clock)
    assert emitter.beat(0.0, force=True) is not None
    assert emitter.beat(1.0) is None
    assert emitter.beat(2.0, final=True) is not None
    assert emitter.beat(3.0, failed=True) is not None
    assert [b.final for b in seen] == [False, True, False]
    assert seen[-1].failed


def test_emitter_counters_are_deltas():
    clock = FakeClock()
    seen: list[ShardBeat] = []
    registry = MetricsRegistry()
    emitter = BeatEmitter(CallbackTransport(seen.append), shard_index=0,
                          n_shards=1, interval_s=0.0, clock=clock,
                          registry=registry)
    registry.counter("shard.events").inc(10)
    clock.advance(1.0)
    emitter.beat(1.0)
    registry.counter("shard.events").inc(5)
    clock.advance(1.0)
    emitter.beat(2.0)
    clock.advance(1.0)
    emitter.beat(3.0)
    assert seen[0].counters == {"shard.events": 10.0}
    assert seen[1].counters == {"shard.events": 5.0}
    assert seen[2].counters == {}                # no change, no payload


def test_null_emitter_is_disabled_and_silent():
    emitter = NullBeatEmitter()
    assert emitter.enabled is False
    assert emitter.beat(1.0, final=True) is None


# ---------------------------------------------------------------------
# shard_heartbeat: the one shared helper (satellite: dedup)
# ---------------------------------------------------------------------


def test_shard_heartbeat_emits_instant_and_beat():
    recorder = MemoryRecorder(shard=2)
    seen: list[ShardBeat] = []
    beats = BeatEmitter(CallbackTransport(seen.append), shard_index=2,
                        n_shards=4, interval_s=0.0, clock=FakeClock())
    obs = Obs.create(recorder, beats)
    shard_heartbeat(obs, 3600.0, component="prefetch", done=2, total=7,
                    users=10, events_done=55)
    [event] = obs.recorder.events()
    assert (event.component, event.name) == ("shard", "heartbeat")
    assert event.ts == 3600.0
    assert event.args == {"component": "prefetch", "done": 2, "total": 7,
                          "users": 10, "events_done": 55}
    [beat] = seen
    assert (beat.watermark_s, beat.done, beat.total) == (3600.0, 2, 7)


def test_shard_heartbeat_noop_without_instruments():
    obs = Obs.create()                           # Null recorder + emitter
    shard_heartbeat(obs, 1.0, component="prefetch", done=1, total=1,
                    users=1, events_done=1)
    assert obs.recorder.events() == []


def test_heartbeat_instants_identical_across_backends(tiny_config,
                                                      tiny_world):
    """Trace parity: both backends emit the same heartbeat instants."""
    def heartbeats(backend):
        result = Runner(tiny_config, shards=2, world=tiny_world,
                        backend=backend,
                        obs=ObsOptions(trace=True)).run("headline")
        return [(e.ts, e.shard, e.args) for e in result.trace_events
                if (e.component, e.name) == ("shard", "heartbeat")]

    event_hb = heartbeats("event")
    batched_hb = heartbeats("batched")
    assert event_hb and event_hb == batched_hb
    components = {args["component"] for _, _, args in event_hb}
    assert components == {"prefetch", "realtime"}


# ---------------------------------------------------------------------
# Watchdog: fake-clock stall/lag detection (satellite: coverage)
# ---------------------------------------------------------------------


def _beat(shard, watermark=0.0, seq=0, **kw):
    return ShardBeat(shard_index=shard, n_shards=2, seq=seq,
                     watermark_s=watermark, **kw)


def test_watchdog_stall_fires_at_threshold_and_clears_on_late_beat():
    clock = FakeClock()
    events: list[StragglerEvent] = []
    agg = LiveAggregator(2, LiveOptions(stall_after_s=10.0),
                         clock=clock, on_straggler=events.append)
    agg.ingest(_beat(0))
    agg.ingest(_beat(1))
    clock.advance(9.9)
    assert agg.check() == []                     # inside the window
    clock.advance(0.2)                           # 10.1s of silence
    fired = agg.check()
    assert {e.shard_index for e in fired} == {0, 1}
    assert all(e.kind == "stall" for e in fired)
    assert agg.check() == []                     # fires once per episode
    # A late beat clears the flag and reports recovery.
    agg.ingest(_beat(1, seq=1))
    recoveries = [e for e in events if e.kind == "recovered"]
    assert [e.shard_index for e in recoveries] == [1]
    assert not agg.view(1).stalled and agg.view(0).stalled
    # The cleared shard re-arms: a fresh silence window refires.
    clock.advance(10.2)
    refired = agg.check()
    assert [e.shard_index for e in refired] == [1]


def test_watchdog_flags_watermark_laggard():
    clock = FakeClock()
    events: list[StragglerEvent] = []
    agg = LiveAggregator(3, LiveOptions(stall_after_s=1e9,
                                        lag_threshold_s=1000.0),
                         clock=clock, on_straggler=events.append)
    agg.ingest(ShardBeat(shard_index=0, n_shards=3, seq=0,
                         watermark_s=50_000.0))
    agg.ingest(ShardBeat(shard_index=1, n_shards=3, seq=0,
                         watermark_s=50_000.0))
    agg.ingest(ShardBeat(shard_index=2, n_shards=3, seq=0,
                         watermark_s=100.0))
    lagging = agg.check()
    assert [e.shard_index for e in lagging] == [2]
    assert lagging[0].kind == "lag"
    assert lagging[0].median_watermark_s == 50_000.0
    # Catching up clears the flag without an event.
    agg.ingest(ShardBeat(shard_index=2, n_shards=3, seq=1,
                         watermark_s=49_800.0))
    assert agg.check() == []
    assert not agg.view(2).lagging


def test_watchdog_ignores_finished_shards():
    clock = FakeClock()
    agg = LiveAggregator(2, LiveOptions(stall_after_s=10.0), clock=clock)
    agg.ingest(_beat(0, final=True))
    agg.ingest(_beat(1))
    clock.advance(20.0)
    assert [e.shard_index for e in agg.check()] == [1]
    assert agg.view(0).done and not agg.view(0).stalled


def test_aggregator_snapshot_folds_progress():
    clock = FakeClock()
    agg = LiveAggregator(4, LiveOptions(), clock=clock)
    agg.ingest(ShardBeat(shard_index=0, n_shards=4, seq=0,
                         watermark_s=10.0, done=5, total=10,
                         events_done=100, rss_bytes=512))
    agg.ingest(ShardBeat(shard_index=1, n_shards=4, seq=0,
                         watermark_s=30.0, done=10, total=10,
                         events_done=300, rss_bytes=1024, final=True))
    snap = agg.snapshot()
    assert snap.n_shards == 4 and snap.started == 2 and snap.done == 1
    assert snap.beats == 2
    assert snap.events_done == 400
    assert snap.progress == pytest.approx((0.5 + 1.0 + 0.0 + 0.0) / 4)
    assert snap.min_watermark_s == 10.0
    assert snap.peak_rss_bytes == 1024


# ---------------------------------------------------------------------
# Renderer
# ---------------------------------------------------------------------


class _TtyStream(io.StringIO):
    def isatty(self):
        return True


def test_renderer_piped_output_is_line_oriented():
    stream = io.StringIO()
    renderer = ProgressRenderer(stream)
    agg = LiveAggregator(2, LiveOptions(), clock=FakeClock())
    renderer.render(agg.snapshot())
    renderer.render(agg.snapshot())              # unchanged: not rewritten
    agg.ingest(_beat(0, final=True))
    renderer.render(agg.snapshot())
    renderer.close()
    out = stream.getvalue()
    assert "\r" not in out and "\x1b" not in out
    lines = out.splitlines()
    assert len(lines) == 2                       # one per *distinct* state
    assert all(line.startswith("[live] ") for line in lines)
    assert "shards 1/2 done" in lines[1]


def test_renderer_tty_output_refreshes_one_line():
    stream = _TtyStream()
    renderer = ProgressRenderer(stream)
    agg = LiveAggregator(2, LiveOptions(), clock=FakeClock())
    renderer.render(agg.snapshot())
    agg.ingest(_beat(0, final=True))
    renderer.render(agg.snapshot())
    renderer.close()
    out = stream.getvalue()
    assert out.count("\r") == 2                  # one refresh per render
    assert out.endswith("\n")                    # close terminates the line


def test_render_progress_flags_trouble():
    clock = FakeClock()
    agg = LiveAggregator(2, LiveOptions(stall_after_s=1.0), clock=clock)
    agg.ingest(_beat(0))
    agg.ingest(_beat(1, failed=True))
    clock.advance(2.0)
    agg.check()
    line = render_progress(agg.snapshot())
    assert "STALLED" in line and "FAILED 1" in line


# ---------------------------------------------------------------------
# The hard invariant: live on == live off, jobs 1 and 4
# ---------------------------------------------------------------------


def _run(tiny_config, tiny_world, parallelism, live, tmp_path=None):
    options = None
    if live:
        options = ObsOptions(live=LiveOptions(
            beat_interval_s=0.01,
            postmortem_dir=tmp_path / "postmortems"))
    return Runner(tiny_config, shards=4, world=tiny_world,
                  parallelism=parallelism, obs=options).run("headline")


def test_live_runs_bit_identical_jobs1_and_jobs4(tiny_config, tiny_world,
                                                 tmp_path):
    plain = _run(tiny_config, tiny_world, 1, live=False)
    live_1 = _run(tiny_config, tiny_world, 1, True, tmp_path)
    live_4 = _run(tiny_config, tiny_world, 4, True, tmp_path)
    for live in (live_1, live_4):
        assert live.prefetch == plain.prefetch
        assert live.realtime == plain.realtime
        assert live.comparison == plain.comparison
        assert live.result_metrics() == plain.result_metrics()
        assert snapshot_digest(live.metrics) == snapshot_digest(
            plain.metrics)
        assert live.postmortems == ()


def test_healthy_run_never_trips_watchdog(tiny_config, tiny_world,
                                          tmp_path, caplog):
    """Default thresholds stay silent on a healthy run the machine can
    actually schedule. The worker count adapts to the box: on a 1-CPU
    container four workers get time-sliced so hard that the OS itself
    manufactures sim-time stragglers — which the watchdog would rightly
    flag, failing a "healthy" assertion that was never true there."""
    import logging
    import os

    jobs = 4 if (os.cpu_count() or 1) >= 4 else 1
    with caplog.at_level(logging.WARNING, logger="repro.obs.live"):
        result = _run(tiny_config, tiny_world, jobs, True, tmp_path)
    assert result.postmortems == ()
    pm_dir = tmp_path / "postmortems"
    assert not (pm_dir.exists() and list(pm_dir.glob("*.json")))
    assert "stalled" not in caplog.text
    assert "straggling" not in caplog.text


def test_live_plane_serial_collects_beats(tiny_config, tiny_world):
    plane = LivePlane(LiveOptions(beat_interval_s=0.0), n_shards=2,
                      system="realtime", parallel=False)
    plane.start()
    setup = plane.worker_setup()
    from repro.runner import run_shard_task
    runner = Runner(tiny_config, shards=2, world=tiny_world)
    world = runner.source.world_for(tiny_config)
    tasks = runner._tasks("realtime", world)
    for task in tasks:
        run_shard_task(task, setup)
    plane.finish()
    snap = plane.aggregator.snapshot()
    assert snap.done == 2 and snap.failed == 0
    assert snap.beats >= 4                       # hello + final per shard
    assert plane.postmortems == []
