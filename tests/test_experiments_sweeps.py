"""Miniature-scale runs of the sweep experiments.

The benchmarks exercise these at full bench scale; here we only verify
the runners' mechanics (structure, caching, labels) on a tiny world.
"""

import pytest

from repro.experiments.e5_e6_overbooking import run_e5_e6
from repro.experiments.e9_headline import run_e9
from repro.experiments.x2_fast_dormancy import run_x2


def test_e9_headline_structure(tiny_config):
    table = run_e9(tiny_config)
    assert {row.system for row in table.rows} == {
        "naive-prefetch", "overbooking", "oracle"}
    assert table.realtime_ad_joules_per_user_day > 0
    system = table.row_for("overbooking")
    assert system.energy_savings > 0.3
    with pytest.raises(KeyError):
        table.row_for("nope")
    rendered = table.render()
    assert "realtime" in rendered and "overbooking" in rendered


def test_e5_e6_sweep_structure_and_cache(tiny_config):
    first = run_e5_e6(tiny_config, ks=(1, 2))
    assert [p.label for p in first.points] == ["random-1", "random-2"]
    assert first.full_model.label == "staggered+rescue"
    # k=1 random replication must violate far more than the full model.
    assert (first.points[0].sla_violation_rate
            > 3 * first.full_model.sla_violation_rate)
    # Second call with identical arguments returns the cached object.
    second = run_e5_e6(tiny_config, ks=(1, 2))
    assert second is first


def test_x2_grid_structure(tiny_config):
    study = run_x2(tiny_config)
    assert len(study.cells) == 4
    assert study.cell("realtime", "3g").savings_vs_baseline == 0.0
    assert study.cell("prefetch", "3g-fd").ad_j_per_user_day < (
        study.cell("realtime", "3g").ad_j_per_user_day)
    with pytest.raises(KeyError):
        study.cell("nope", "3g")
    assert "fast dormancy" in study.render()


def test_e12_radio_activity_structure(tiny_config):
    from repro.experiments.e12_radio_activity import run_e12

    figure = run_e12(tiny_config)
    assert figure.realtime_wakeups_per_user_day > 0
    assert (figure.prefetch_wakeups_per_user_day
            <= figure.realtime_wakeups_per_user_day)
    # Residency shares are fractions of the horizon, idle excluded.
    for shares in (figure.realtime_residency, figure.prefetch_residency):
        assert "idle" not in shares
        assert all(0.0 <= v <= 1.0 for v in shares.values())
    assert "wakeups" in figure.render()
