"""Sharded-runner API: determinism, merging, caching."""

from __future__ import annotations

import pytest

import repro.runner as runner_module
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import ShardJob, execute_shard
from repro.metrics.outcomes import compare
from repro.runner import (
    ExecOptions,
    Runner,
    RunResult,
    WorldCache,
    WorldSource,
    auto_shard_count,
    partition_users,
    set_default_exec_options,
    shard_rng_tag,
)


@pytest.fixture(scope="module")
def shard_world(tiny_config):
    cache = WorldCache()
    return cache.get(tiny_config)


# ----------------------------------------------------------------------
# Shard layout
# ----------------------------------------------------------------------


def test_auto_shard_count_scales_with_population():
    assert auto_shard_count(40) == 1
    assert auto_shard_count(400) == 2
    assert auto_shard_count(4000) == 16     # clamped
    assert auto_shard_count(0) == 1


def test_partition_users_is_contiguous_and_near_even():
    uids = [f"u{i:03d}" for i in range(10)]
    chunks = partition_users(uids, 3)
    assert [len(c) for c in chunks] == [4, 3, 3]
    assert [uid for chunk in chunks for uid in chunk] == uids
    with pytest.raises(ValueError):
        partition_users(uids, 0)


def test_single_shard_uses_legacy_stream_names():
    assert shard_rng_tag(0, 1) == ""
    assert shard_rng_tag(2, 4) == "#shard2/4"


# ----------------------------------------------------------------------
# max_shards: the historical clamp-to-16 as a visible knob
# ----------------------------------------------------------------------


def test_auto_shard_count_honours_max_shards_override():
    assert auto_shard_count(4000) == 16                  # default clamp
    assert auto_shard_count(4000, max_shards=4) == 4
    assert auto_shard_count(4000, max_shards=64) == 20   # layout smaller
    assert auto_shard_count(400, max_shards=16) == 2     # cap not binding
    assert auto_shard_count(40, max_shards=1) == 1


def test_runner_max_shards_caps_resolved_layout(tiny_config, monkeypatch):
    monkeypatch.setattr(runner_module, "USERS_PER_SHARD", 10)
    assert Runner(tiny_config).resolve_shards(40) == 4
    assert Runner(tiny_config, max_shards=2).resolve_shards(40) == 2
    # Explicit shards= bypasses the auto layout (and its clamp) entirely.
    assert Runner(tiny_config, shards=3, max_shards=1).resolve_shards(40) == 3
    with pytest.raises(ValueError):
        Runner(tiny_config, max_shards=0)


def test_auto_clamp_emits_counter_without_touching_results(
        tiny_config, shard_world, monkeypatch):
    """When the clamp actually bites, the run carries the obs counter;
    the merged outcome still equals an explicitly single-sharded run."""
    monkeypatch.setattr(runner_module, "USERS_PER_SHARD", 10)
    clamped = Runner(tiny_config, max_shards=1,
                     world=shard_world).run("realtime")
    assert clamped.n_shards == 1
    assert clamped.metrics.counters["runner.auto_shards_clamped"] == 1.0
    explicit = Runner(tiny_config, shards=1,
                      world=shard_world).run("realtime")
    assert "runner.auto_shards_clamped" not in explicit.metrics.counters
    assert clamped.realtime == explicit.realtime


def test_exec_options_default_reaches_new_runners(tiny_config):
    try:
        set_default_exec_options(ExecOptions(workers=2, max_shards=3))
        runner = Runner(tiny_config)
        assert runner.executor == "pool"
        assert runner.workers == 2 and runner.max_shards == 3
        # Explicit arguments beat the installed default.
        assert Runner(tiny_config, max_shards=5).max_shards == 5
    finally:
        set_default_exec_options(None)
    assert Runner(tiny_config).max_shards is None
    with pytest.raises(ValueError):
        ExecOptions(executor="quantum")
    with pytest.raises(ValueError):
        ExecOptions(max_shards=0)


# ----------------------------------------------------------------------
# Determinism: the acceptance criteria
# ----------------------------------------------------------------------


def test_parallelism_does_not_change_results(tiny_config, shard_world):
    """parallelism=1 vs parallelism=4 on the same 4-shard layout must be
    bit-for-bit identical — parallelism is purely an execution knob."""
    serial = Runner(tiny_config, parallelism=1, shards=4,
                    world=shard_world).run("headline")
    parallel = Runner(tiny_config, parallelism=4, shards=4,
                      world=shard_world).run("headline")
    assert serial.n_shards == parallel.n_shards == 4
    assert serial.prefetch == parallel.prefetch
    assert serial.realtime == parallel.realtime
    assert serial.comparison == parallel.comparison


def test_runner_is_deterministic_across_calls(tiny_config, shard_world):
    a = Runner(tiny_config, shards=2, world=shard_world).run("prefetch")
    b = Runner(tiny_config, shards=2, world=shard_world).run("prefetch")
    assert a.prefetch == b.prefetch


def test_single_shard_matches_legacy_serial_run(tiny_config, shard_world):
    """shards=1 reproduces the pre-sharding serial harness exactly."""
    result = Runner(tiny_config, shards=1, world=shard_world).run("headline")
    execution = execute_shard(ShardJob.for_world(tiny_config, shard_world))
    legacy = compare(execution.prefetch.outcome, execution.realtime)
    assert result.prefetch.energy == legacy.prefetch.energy
    assert result.prefetch.revenue == legacy.prefetch.revenue
    assert result.prefetch.sla.n_sales == legacy.prefetch.sla.n_sales
    assert result.prefetch.sla.n_violated == legacy.prefetch.sla.n_violated
    assert result.prefetch.sla.mean_latency_s == pytest.approx(
        legacy.prefetch.sla.mean_latency_s)
    assert result.realtime == legacy.realtime


def test_shard_totals_conserve_slots(tiny_config, shard_world):
    """Sharding partitions users, so population-wide display counts from
    a sharded run cover the same slots as the single-shard run."""
    sharded = Runner(tiny_config, shards=4,
                     world=shard_world).run("prefetch").prefetch
    single = Runner(tiny_config, shards=1,
                    world=shard_world).run("prefetch").prefetch
    assert sharded.total_slots == single.total_slots
    assert sharded.energy.n_users == single.energy.n_users


def test_run_result_value_and_validation(tiny_config, shard_world):
    result = Runner(tiny_config, world=shard_world).run("realtime")
    assert isinstance(result, RunResult)
    assert result.value is result.realtime
    assert result.prefetch is None and result.comparison is None
    assert result.elapsed_s > 0
    with pytest.raises(ValueError):
        Runner(tiny_config, world=shard_world).run("nonsense")
    with pytest.raises(ValueError):
        Runner(tiny_config, parallelism=0)
    with pytest.raises(ValueError):
        Runner(tiny_config, shards=0)
    with pytest.raises(ValueError):
        Runner(tiny_config, backend="quantum")


def test_runner_owns_explicit_world_source(tiny_config, shard_world):
    """Runner resolves worlds through its own WorldSource — no module
    state; an explicit source is honoured as given."""
    source = WorldSource(world=shard_world)
    runner = Runner(tiny_config, source=source)
    assert runner.source is source
    result = runner.run("realtime")
    assert result.realtime is not None
    # Convenience params build a private source.
    implicit = Runner(tiny_config, world=shard_world)
    assert implicit.source.world is shard_world


# ----------------------------------------------------------------------
# WorldCache
# ----------------------------------------------------------------------


def test_world_cache_hits_and_lru_bound():
    cache = WorldCache(max_worlds=2)
    configs = [ExperimentConfig(n_users=10, n_days=4, train_days=2, seed=s)
               for s in (1, 2, 3)]
    first = cache.get(configs[0])
    assert cache.get(configs[0]) is first
    assert cache.hits == 1 and cache.misses == 1
    cache.get(configs[1])
    cache.get(configs[2])          # evicts configs[0]
    assert len(cache) == 2
    assert cache.get(configs[0]) is not first  # rebuilt after eviction
    assert cache.misses == 4


def test_world_cache_clear():
    cache = WorldCache()
    config = ExperimentConfig(n_users=10, n_days=4, train_days=2, seed=5)
    cache.get(config)
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0


def test_world_cache_spills_traces_to_disk(tmp_path):
    config = ExperimentConfig(n_users=10, n_days=4, train_days=2, seed=11)
    writer = WorldCache(spill_dir=tmp_path)
    built = writer.get(config)
    spill = writer.spill_path(config)
    assert spill is not None and spill.exists()

    reader = WorldCache(spill_dir=tmp_path)
    reloaded = reader.get(config)
    assert reader.spill_loads == 1
    assert set(reloaded.timelines) == set(built.timelines)
    # Same radio-profile assignment (drawn from the seed, not the file).
    assert {u: p.name for u, p in reloaded.profile_of.items()} == \
           {u: p.name for u, p in built.profile_of.items()}


def test_world_cache_disabled_spill_has_no_path():
    cache = WorldCache()
    config = ExperimentConfig(n_users=10, n_days=4, train_days=2, seed=1)
    assert cache.spill_path(config) is None


# ----------------------------------------------------------------------
# API redesign: keyword-only config and removed legacy wrappers
# ----------------------------------------------------------------------


def test_legacy_wrappers_are_gone():
    """The pre-1.1 module-level wrappers were removed after their
    deprecation cycle; the shard cores and Runner are the API."""
    import repro
    import repro.experiments.harness as harness
    for name in ("run_prefetch", "run_realtime", "run_headline",
                 "run_prefetch_shard", "run_realtime_shard",
                 "run_prefetch_instrumented", "get_world",
                 "clear_world_cache"):
        assert not hasattr(harness, name)
        assert not hasattr(repro, name)


def test_experiment_config_rejects_positional_args():
    with pytest.raises(TypeError):
        ExperimentConfig(7, 40)  # noqa: must use keywords


def test_runner_exported_from_package_root():
    import repro
    assert repro.Runner is Runner
    assert repro.WorldCache is WorldCache
    assert repro.RunResult is RunResult
