"""Unit tests for named RNG streams."""

import numpy as np

from repro.sim.rng import RngRegistry


def test_same_name_returns_same_generator():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_streams_are_deterministic_across_registries():
    a = RngRegistry(42).stream("traces").random(8)
    b = RngRegistry(42).stream("traces").random(8)
    assert np.allclose(a, b)


def test_different_names_give_independent_streams():
    reg = RngRegistry(42)
    a = reg.stream("one").random(8)
    b = reg.stream("two").random(8)
    assert not np.allclose(a, b)


def test_different_master_seeds_differ():
    a = RngRegistry(1).stream("x").random(8)
    b = RngRegistry(2).stream("x").random(8)
    assert not np.allclose(a, b)


def test_fresh_replays_stream_from_start():
    reg = RngRegistry(7)
    first_draw = reg.stream("s").random(4)
    replay = reg.fresh("s").random(4)
    assert np.allclose(first_draw, replay)


def test_adding_streams_does_not_perturb_existing():
    """Named derivation: a new component must not shift old streams."""
    reg1 = RngRegistry(11)
    a1 = reg1.stream("alpha").random(4)

    reg2 = RngRegistry(11)
    reg2.stream("zzz-new-component").random(100)
    a2 = reg2.stream("alpha").random(4)
    assert np.allclose(a1, a2)


def test_names_sorted():
    reg = RngRegistry(0)
    reg.stream("b")
    reg.stream("a")
    assert reg.names() == ["a", "b"]
