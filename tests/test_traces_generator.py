"""Unit tests for synthetic trace generation."""

import numpy as np
import pytest

from repro.sim.rng import RngRegistry
from repro.traces.generator import TraceConfig, TraceGenerator, generate_trace
from repro.traces.schema import SECONDS_PER_DAY
from repro.workloads.appstore import TOP15
from repro.workloads.population import PopulationConfig, build_population


def _make(n_users=20, n_days=4, seed=3):
    registry = RngRegistry(seed)
    population = build_population(PopulationConfig(n_users=n_users),
                                  registry.stream("pop"))
    trace = generate_trace(population, TOP15, registry.stream("trace"),
                           n_days=n_days)
    return population, trace


def test_trace_covers_population():
    population, trace = _make()
    assert set(trace.users) == {u.user_id for u in population}
    assert trace.n_days == 4


def test_generation_is_deterministic():
    _, t1 = _make(seed=9)
    _, t2 = _make(seed=9)
    s1 = [(s.user_id, s.app_id, s.start, s.duration) for s in t1.all_sessions()]
    s2 = [(s.user_id, s.app_id, s.start, s.duration) for s in t2.all_sessions()]
    assert s1 == s2


def test_different_seeds_differ():
    _, t1 = _make(seed=9)
    _, t2 = _make(seed=10)
    s1 = [(s.user_id, s.start) for s in t1.all_sessions()]
    s2 = [(s.user_id, s.start) for s in t2.all_sessions()]
    assert s1 != s2


def test_sessions_within_horizon_and_bounds():
    _, trace = _make(n_days=3)
    config = TraceConfig(n_days=3)
    for session in trace.all_sessions():
        assert 0.0 <= session.start < 3 * SECONDS_PER_DAY
        assert session.end <= 3 * SECONDS_PER_DAY
        assert config.min_session_s <= session.duration <= config.max_session_s


def test_sessions_use_catalog_apps():
    _, trace = _make()
    app_ids = {a.app_id for a in TOP15}
    assert {s.app_id for s in trace.all_sessions()} <= app_ids


def test_session_volume_tracks_user_rates():
    population, trace = _make(n_users=40, n_days=6)
    rates = {u.user_id: u.sessions_per_day for u in population}
    heavy = max(population, key=lambda u: u.sessions_per_day)
    light = min(population, key=lambda u: u.sessions_per_day)
    if rates[heavy.user_id] > 3 * rates[light.user_id]:
        assert (len(trace.user(heavy.user_id).sessions)
                > len(trace.user(light.user_id).sessions))


def test_sessions_sorted_per_user():
    _, trace = _make()
    for user in trace.users.values():
        starts = [s.start for s in user.sessions]
        assert starts == sorted(starts)


def test_config_validation():
    with pytest.raises(ValueError):
        TraceConfig(n_days=0)
    with pytest.raises(ValueError):
        TraceConfig(min_session_s=0.0)
    with pytest.raises(ValueError):
        TraceConfig(min_session_s=100.0, max_session_s=50.0)


def test_generator_rejects_empty_catalog(rng):
    with pytest.raises(ValueError):
        TraceGenerator([], TraceConfig(), rng)


def test_diurnal_structure_present():
    """Most sessions should land in waking hours."""
    _, trace = _make(n_users=60, n_days=5)
    hours = np.array([s.hour_of_day for s in trace.all_sessions()])
    waking = ((hours >= 7) & (hours <= 23.5)).mean()
    assert waking > 0.75
