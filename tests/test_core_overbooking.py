"""Unit tests for the overbooking planner and dispatch policies."""

import pytest

from repro.core.overbooking import (
    Assignment,
    ClientForecast,
    DispatchPlan,
    GreedyBackfillPolicy,
    NoReplicationPolicy,
    RandomKPolicy,
    StaggeredPolicy,
    make_policy,
    policy_names,
)
from repro.exchange.marketplace import Sale
from repro.sim.rng import RngRegistry


class FakeCurve:
    """Deterministic curve: P(actual >= j) given per-client tables."""

    def __init__(self, tables: dict[float, list[float]],
                 dup_scale: float = 0.5) -> None:
        self.tables = tables
        self.dup_scale = dup_scale

    def sla(self, predicted: float, j: int) -> float:
        table = self.tables[predicted]
        if j <= 0:
            return 1.0
        return table[j - 1] if j - 1 < len(table) else 0.0

    def epoch(self, predicted: float, j: int) -> float:
        return self.dup_scale * self.sla(predicted, j)


def _sales(prices) -> list[Sale]:
    return [Sale(sale_id=i, campaign_id=f"c{i}", price=p,
                 creative_bytes=4000, sold_at=0.0, deadline=3600.0)
            for i, p in enumerate(prices)]


def _forecasts(spec) -> list[ClientForecast]:
    """spec: list of (client_id, predicted, capacity[, backlog])."""
    out = []
    for entry in spec:
        cid, predicted, capacity = entry[:3]
        backlog = entry[3] if len(entry) > 3 else 0
        out.append(ClientForecast(cid, predicted, backlog=backlog,
                                  capacity=capacity))
    return out


def test_policy_registry():
    assert set(policy_names()) == {"staggered", "greedy-backfill",
                                   "random-k", "no-replication"}
    with pytest.raises(KeyError):
        make_policy("nope")


def test_forecast_validation():
    with pytest.raises(ValueError):
        ClientForecast("u", predicted=-1.0)
    with pytest.raises(ValueError):
        ClientForecast("u", predicted=1.0, capacity=-1)


def test_policy_param_validation():
    with pytest.raises(ValueError):
        StaggeredPolicy(epsilon=0.0)
    with pytest.raises(ValueError):
        StaggeredPolicy(max_replicas=0)
    with pytest.raises(ValueError):
        StaggeredPolicy(dup_penalty=-1.0)
    with pytest.raises(ValueError):
        RandomKPolicy(k=0)


def test_single_reliable_unit_meets_epsilon_without_backups():
    curve = FakeCurve({10.0: [0.999, 0.99, 0.98]})
    policy = StaggeredPolicy(epsilon=0.01, max_replicas=4)
    plan = policy.plan(_sales([1.0]), _forecasts([("a", 10.0, 3)]), curve)
    assert plan.replicas[0] == ["a"]
    assert plan.expected_violation[0] == pytest.approx(0.001)
    assert plan.assignments() == 1


def test_backups_added_until_epsilon():
    # Every position shows with p=0.8 -> need 3 replicas for eps=0.01.
    curve = FakeCurve({5.0: [0.8] * 10})
    policy = StaggeredPolicy(epsilon=0.01, max_replicas=8)
    forecasts = _forecasts([("a", 5.0, 5), ("b", 5.0, 5), ("c", 5.0, 5),
                            ("d", 5.0, 5)])
    plan = policy.plan(_sales([1.0]), forecasts, curve)
    assert len(plan.replicas[0]) == 3
    assert plan.expected_violation[0] == pytest.approx(0.2 ** 3)


def test_replicas_on_distinct_clients():
    curve = FakeCurve({5.0: [0.5] * 20})
    policy = StaggeredPolicy(epsilon=0.001, max_replicas=8)
    forecasts = _forecasts([("a", 5.0, 20), ("b", 5.0, 20), ("c", 5.0, 20)])
    plan = policy.plan(_sales([1.0, 2.0]), forecasts, curve)
    for owners in plan.replicas.values():
        assert len(owners) == len(set(owners))


def test_max_replicas_caps_replication():
    curve = FakeCurve({1.0: [0.3] * 50})
    policy = StaggeredPolicy(epsilon=1e-9, max_replicas=3)
    forecasts = _forecasts([(f"u{i}", 1.0, 10) for i in range(10)])
    plan = policy.plan(_sales([1.0]), forecasts, curve)
    assert len(plan.replicas[0]) == 3


def test_capacity_respected_and_unplaced_reported():
    curve = FakeCurve({2.0: [0.9, 0.8]})
    policy = StaggeredPolicy(epsilon=0.5, max_replicas=1)
    forecasts = _forecasts([("a", 2.0, 2)])
    plan = policy.plan(_sales([3.0, 2.0, 1.0]), forecasts, curve)
    assert len(plan.queues["a"]) == 2
    assert len(plan.unplaced) == 1
    # The cheapest sale is the one left out (price-ordered planning).
    assert plan.unplaced[0].price == 1.0


def test_high_price_sales_get_best_positions():
    curve = FakeCurve({9.0: [0.95, 0.2], 1.0: [0.4, 0.1]})
    policy = NoReplicationPolicy()
    forecasts = _forecasts([("busy", 9.0, 2), ("slow", 1.0, 2)])
    plan = policy.plan(_sales([5.0, 50.0]), forecasts, curve)
    expensive_owner = plan.replicas[1][0]   # sale 1 has price 50
    assert expensive_owner == "busy"
    assert plan.queues["busy"][0].sale.price == 50.0


def test_backlog_shifts_positions():
    curve = FakeCurve({3.0: [0.9, 0.5, 0.1]})
    policy = NoReplicationPolicy()
    fresh = policy.plan(_sales([1.0]),
                        _forecasts([("a", 3.0, 1)]), curve)
    backlogged = policy.plan(_sales([1.0]),
                             _forecasts([("a", 3.0, 1, 2)]), curve)
    assert fresh.expected_violation[0] == pytest.approx(0.1)
    assert backlogged.expected_violation[0] == pytest.approx(0.9)


def test_standby_until_marks_backups_only():
    curve = FakeCurve({5.0: [0.8] * 10})
    policy = StaggeredPolicy(epsilon=0.01, max_replicas=4)
    forecasts = _forecasts([("a", 5.0, 5), ("b", 5.0, 5), ("c", 5.0, 5)])
    plan = policy.plan(_sales([1.0]), forecasts, curve, standby_until=500.0)
    assignments = [a for q in plan.queues.values() for a in q]
    activations = sorted(a.active_from for a in assignments)
    assert activations[0] == 0.0                  # the primary
    assert all(a == 500.0 for a in activations[1:])  # the backups


def test_greedy_backfill_is_dup_blind_staggered():
    policy = GreedyBackfillPolicy(epsilon=0.01)
    assert policy.dup_penalty == 0.0


def test_random_k_places_exactly_k_when_possible():
    curve = FakeCurve({2.0: [0.5] * 10})
    policy = RandomKPolicy(k=3)
    rng = RngRegistry(5).fresh("rk")
    forecasts = _forecasts([(f"u{i}", 2.0, 4) for i in range(6)])
    plan = policy.plan(_sales([1.0, 1.0]), forecasts, curve, rng=rng)
    for owners in plan.replicas.values():
        assert len(owners) == 3
        assert len(set(owners)) == 3
    assert plan.replication_factor() == pytest.approx(3.0)


def test_random_k_requires_rng():
    with pytest.raises(ValueError):
        RandomKPolicy(k=2).plan(_sales([1.0]), _forecasts([("a", 2.0, 1)]),
                                FakeCurve({2.0: [0.5]}))


def test_random_k_with_no_capacity_reports_unplaced():
    curve = FakeCurve({2.0: [0.5]})
    plan = RandomKPolicy(k=2).plan(_sales([1.0]),
                                   _forecasts([("a", 2.0, 0)]), curve,
                                   rng=RngRegistry(1).fresh("rk"))
    assert len(plan.unplaced) == 1


def test_plan_statistics():
    plan = DispatchPlan()
    plan.queues = {"a": [Assignment(s) for s in _sales([1.0, 2.0])],
                   "b": [Assignment(_sales([3.0])[0])]}
    plan.replicas = {0: ["a"], 1: ["a", "b"]}
    assert plan.assignments() == 3
    assert plan.replication_factor() == pytest.approx(1.5)
    assert plan.replication_histogram() == {1: 1, 2: 1}


def test_planner_matches_closed_form_on_homogeneous_curve():
    """With a flat show probability and ample capacity, the staggered
    planner uses exactly the closed-form replica count from
    repro.core.analysis."""
    from repro.core.analysis import replicas_for_epsilon

    for p, epsilon in ((0.9, 0.01), (0.7, 0.05), (0.5, 0.02)):
        curve = FakeCurve({4.0: [p] * 50})
        forecasts = _forecasts([(f"u{i}", 4.0, 50) for i in range(12)])
        policy = StaggeredPolicy(epsilon=epsilon, max_replicas=12)
        plan = policy.plan(_sales([1.0]), forecasts, curve)
        expected = replicas_for_epsilon(p, epsilon, max_replicas=12)
        assert len(plan.replicas[0]) == expected
        assert plan.expected_violation[0] == pytest.approx(
            (1 - p) ** expected)
