"""repro.obs runtime context, run manifests, and the log helper."""

from __future__ import annotations

import io
import logging

import pytest

from repro.experiments.config import ExperimentConfig
from repro.obs import log
from repro.obs.manifest import (
    RunManifest,
    build_manifest,
    config_digest,
    streams_manifest_hash,
)
from repro.obs.runtime import (
    NULL_RECORDER,
    Obs,
    ObsOptions,
    activate,
    counter,
    current_obs,
    default_obs_options,
    next_run_dir,
    set_default_obs_options,
)
from repro.obs.trace import MemoryRecorder


class TestRuntimeContext:
    def test_default_bundle_counts_and_never_traces(self):
        obs = current_obs()
        assert obs.recorder is NULL_RECORDER or not obs.recorder.enabled

    def test_activate_swaps_and_restores(self):
        outer = current_obs()
        bundle = Obs.create()
        with activate(bundle):
            assert current_obs() is bundle
            counter("test.activation").inc()
        assert current_obs() is outer
        assert bundle.metrics.snapshot().counters["test.activation"] == 1

    def test_activate_nests(self):
        first, second = Obs.create(), Obs.create()
        with activate(first):
            with activate(second):
                assert current_obs() is second
            assert current_obs() is first

    def test_create_with_recorder(self):
        rec = MemoryRecorder(shard=2)
        obs = Obs.create(rec)
        assert obs.recorder is rec
        assert Obs.create().recorder.enabled is False


class TestObsOptions:
    def test_defaults_are_quiet(self):
        options = ObsOptions()
        assert options.out_dir is None
        assert options.trace is False

    def test_process_default_install_and_clear(self):
        try:
            set_default_obs_options(ObsOptions(trace=True))
            installed = default_obs_options()
            assert installed is not None and installed.trace
        finally:
            set_default_obs_options(None)
        assert default_obs_options() is None

    def test_next_run_dir_requires_out_dir(self):
        with pytest.raises(ValueError, match="out_dir"):
            next_run_dir(ObsOptions(), "headline")

    def test_next_run_dir_sequence_and_label(self, tmp_path):
        options = ObsOptions(out_dir=tmp_path)
        first = next_run_dir(options, "headline")
        second = next_run_dir(ObsOptions(out_dir=tmp_path, label="sweep"),
                              "headline")
        assert first.parent == tmp_path
        assert first.name.endswith("-headline")
        assert second.name.endswith("-sweep")
        assert first.name < second.name


class TestManifest:
    def test_config_digest_is_content_hash(self):
        a = ExperimentConfig(n_users=40, n_days=6, train_days=3, seed=99)
        b = ExperimentConfig(n_users=40, n_days=6, train_days=3, seed=99)
        c = ExperimentConfig(n_users=41, n_days=6, train_days=3, seed=99)
        assert config_digest(a) == config_digest(b)
        assert config_digest(a) != config_digest(c)

    def test_streams_manifest_hash_present_in_repo(self):
        # analysis/streams.json is committed; the hash pins it.
        digest = streams_manifest_hash()
        assert digest is not None and len(digest) == 64

    def test_build_and_roundtrip(self, tmp_path):
        config = ExperimentConfig(n_users=40, n_days=6, train_days=3,
                                  seed=99)
        manifest = build_manifest(
            config, system="headline", n_shards=4, parallelism=2,
            trace_enabled=True, elapsed_s=1.25,
            counter_totals={"engine.events": 100.0})
        assert manifest.seed == 99
        assert manifest.config_hash == config_digest(config)
        assert manifest.rng_stream_manifest_hash == streams_manifest_hash()
        path = tmp_path / "manifest.json"
        manifest.write(path)
        assert RunManifest.read(path) == manifest


class TestLogHelper:
    def test_get_logger_roots_bare_names(self):
        assert log.get_logger("traces.generator").name == \
            "repro.traces.generator"
        assert log.get_logger("repro.server").name == "repro.server"

    def test_silent_by_default_then_enabled(self):
        stream = io.StringIO()
        logger = log.get_logger("test.obs_log")
        try:
            log.enable(level=logging.INFO, stream=stream)
            logger.info("rescued %d ads at t=%.0fs", 2, 3600.0)
        finally:
            log.disable()
        logger.info("after disable: swallowed")
        output = stream.getvalue()
        assert "rescued 2 ads at t=3600s" in output
        assert output.count("\n") == 1
        # No wall-clock timestamps in the format: comparable runs.
        assert "INFO repro.test.obs_log:" in output

    def test_enable_is_idempotent(self):
        stream = io.StringIO()
        try:
            log.enable(stream=stream)
            log.enable(stream=stream)
            log.get_logger("test.obs_log").info("once")
        finally:
            log.disable()
        assert stream.getvalue().count("once") == 1
