"""Unit tests for coroutine-style simulation processes."""

import pytest

from repro.sim.engine import Engine
from repro.sim.processes import every, spawn


def test_single_process_ticks():
    eng = Engine()
    log = []

    def worker():
        for i in range(3):
            yield 2.0
            log.append((eng.now, i))

    proc = spawn(eng, worker())
    eng.run()
    assert log == [(2.0, 0), (4.0, 1), (6.0, 2)]
    assert not proc.alive
    assert proc.steps == 3


def test_processes_interleave_by_time():
    eng = Engine()
    log = []

    def worker(name, period, count):
        for _ in range(count):
            yield period
            log.append((eng.now, name))

    spawn(eng, worker("fast", 1.0, 3))
    spawn(eng, worker("slow", 2.5, 2))
    eng.run()
    assert log == [(1.0, "fast"), (2.0, "fast"), (2.5, "slow"),
                   (3.0, "fast"), (5.0, "slow")]


def test_start_delay():
    eng = Engine()
    seen = []

    def worker():
        yield 1.0
        seen.append(eng.now)

    spawn(eng, worker(), start_delay=10.0)
    eng.run()
    assert seen == [11.0]


def test_zero_delay_yields_run_same_timestamp():
    eng = Engine()
    seen = []

    def worker():
        yield 0.0
        seen.append(eng.now)
        yield 0.0
        seen.append(eng.now)

    spawn(eng, worker())
    eng.run()
    assert seen == [0.0, 0.0]


def test_invalid_delay_raises():
    eng = Engine()

    def worker():
        yield -1.0

    spawn(eng, worker())
    with pytest.raises(ValueError, match="invalid delay"):
        eng.run()


def test_interrupt_stops_process():
    eng = Engine()
    log = []

    def worker():
        while True:
            yield 1.0
            log.append(eng.now)

    proc = spawn(eng, worker())
    eng.run(until=3.5)
    proc.interrupt()
    eng.run()
    assert log == [1.0, 2.0, 3.0]
    assert not proc.alive


def test_every_helper_with_until():
    eng = Engine()
    ticks = []
    every(eng, 2.0, lambda: ticks.append(eng.now), until=7.0)
    eng.run(until=20.0)
    assert ticks == [2.0, 4.0, 6.0]


def test_every_rejects_bad_period():
    with pytest.raises(ValueError):
        every(Engine(), 0.0, lambda: None)
