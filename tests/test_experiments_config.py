"""Unit tests for experiment configuration and presets."""

import pytest

from repro.baselines.presets import apply_preset
from repro.experiments.config import (
    BENCH_SCALE,
    PAPER_SCALE,
    TEST_SCALE,
    ExperimentConfig,
)


def test_defaults_are_consistent():
    config = ExperimentConfig()
    assert config.test_days == config.n_days - config.train_days
    server = config.server_config()
    assert server.epoch_s == config.epoch_s
    assert server.deadline_s == config.deadline_s
    assert server.sell_factor == config.sell_factor
    assert config.population_config().n_users == config.n_users


def test_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(train_days=0)
    with pytest.raises(ValueError):
        ExperimentConfig(train_days=10, n_days=10)
    with pytest.raises(ValueError):
        ExperimentConfig(epoch_s=5000.0)


def test_variant_replaces_fields():
    base = ExperimentConfig()
    variant = base.variant(n_users=10, predictor="oracle")
    assert variant.n_users == 10
    assert variant.predictor == "oracle"
    assert base.n_users != 10   # original untouched


def test_world_key_ignores_serving_knobs():
    a = ExperimentConfig(epsilon=0.01)
    b = ExperimentConfig(epsilon=0.2)
    assert a.world_key() == b.world_key()
    c = ExperimentConfig(n_users=999)
    assert c.world_key() != a.world_key()


def test_policy_kwargs_full_merges_defaults():
    config = ExperimentConfig(epsilon=0.07, max_replicas=3,
                              policy_kwargs={"dup_penalty": 1.0})
    kwargs = config.policy_kwargs_full()
    assert kwargs == {"dup_penalty": 1.0, "epsilon": 0.07, "max_replicas": 3}
    explicit = ExperimentConfig(policy_kwargs={"epsilon": 0.5})
    assert explicit.policy_kwargs_full()["epsilon"] == 0.5


def test_named_scales():
    assert PAPER_SCALE.n_users == 1750
    assert BENCH_SCALE.n_users < PAPER_SCALE.n_users
    assert TEST_SCALE.n_users < BENCH_SCALE.n_users


def test_presets():
    base = ExperimentConfig()
    naive = apply_preset("naive-prefetch", base)
    assert naive.policy == "no-replication"
    assert naive.rescue_batch == 0
    oracle = apply_preset("oracle", base)
    assert oracle.predictor == "oracle"
    assert apply_preset("realtime", base) is base
    assert apply_preset("overbooking", base).policy == "staggered"
    with pytest.raises(KeyError):
        apply_preset("nope", base)
