"""Unit tests for the Device wrapper."""

import pytest

from repro.client.device import TAG_AD, TAG_APP, Device
from repro.radio.profiles import THREE_G


def test_tagged_transfers_split_energy_and_bytes():
    device = Device("u", THREE_G)
    device.ad_fetch(0.0, 4000)
    device.app_request(500.0, 9000)
    device.finish()
    assert device.ad_bytes == 4000
    assert device.app_bytes == 9000
    assert device.ad_energy() == pytest.approx(
        THREE_G.isolated_transfer_energy(4000))
    assert device.app_energy() == pytest.approx(
        THREE_G.isolated_transfer_energy(9000))
    assert device.wakeups == 2


def test_streaming_duration_and_bytes():
    device = Device("u", THREE_G)
    record = device.app_streaming(0.0, 120.0)
    device.finish()
    assert record.end_time - record.start_time == pytest.approx(120.0)
    assert device.app_bytes == int(120.0 * THREE_G.throughput)
    # Energy ~ active power for the whole span plus promo and tail.
    expected = (THREE_G.promo_energy + THREE_G.active_power * 120.0
                + THREE_G.tail_energy)
    assert device.app_energy() == pytest.approx(expected)


def test_untagged_energy_views_are_zero_by_default():
    device = Device("u", THREE_G)
    device.finish()
    assert device.ad_energy() == 0.0
    assert device.app_energy() == 0.0


def test_timeline_collection_is_opt_in():
    plain = Device("u", THREE_G)
    plain.ad_fetch(0.0, 100)
    plain.finish()
    assert plain.radio.timeline() == []
    assert plain.radio.records == []     # records off for memory

    instrumented = Device("u", THREE_G, keep_timeline=True)
    instrumented.ad_fetch(0.0, 100)
    instrumented.finish()
    assert instrumented.radio.timeline() != []
    assert instrumented.radio.records != []
