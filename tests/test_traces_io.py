"""Unit tests for trace persistence."""

import json

import pytest

from repro.traces.io import read_trace, write_trace
from repro.traces.schema import Session, Trace, UserTrace


def _sample_trace() -> Trace:
    trace = Trace(n_days=2)
    trace.add_session(Session("u1", "puzzle_blocks", 100.0, 60.0), "wp")
    trace.add_session(Session("u1", "daily_weather", 5000.0, 30.0), "wp")
    trace.add_session(Session("u2", "chat_now", 300.0, 120.0), "iphone")
    trace.users["u3"] = UserTrace("u3", "wp")   # silent user
    return trace


def test_roundtrip_preserves_everything(tmp_path):
    original = _sample_trace()
    path = tmp_path / "trace.jsonl"
    count = write_trace(original, path)
    assert count == 3
    loaded = read_trace(path)
    assert loaded.n_days == 2
    assert set(loaded.users) == {"u1", "u2", "u3"}
    assert loaded.user("u2").platform == "iphone"
    assert len(loaded.user("u3").sessions) == 0
    orig_sessions = [(s.user_id, s.app_id, s.start, s.duration)
                     for s in original.all_sessions()]
    load_sessions = [(s.user_id, s.app_id, s.start, s.duration)
                     for s in loaded.all_sessions()]
    assert orig_sessions == load_sessions


def test_read_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        read_trace(path)


def test_read_rejects_missing_header(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"kind": "session"}) + "\n")
    with pytest.raises(ValueError, match="header"):
        read_trace(path)


def test_read_rejects_bad_version(tmp_path):
    path = tmp_path / "v99.jsonl"
    path.write_text(json.dumps({"kind": "trace-header", "version": 99,
                                "n_days": 1, "users": {}}) + "\n")
    with pytest.raises(ValueError, match="version"):
        read_trace(path)


def test_read_rejects_unexpected_record_kind(tmp_path):
    path = tmp_path / "weird.jsonl"
    header = {"kind": "trace-header", "version": 1, "n_days": 1, "users": {}}
    path.write_text(json.dumps(header) + "\n"
                    + json.dumps({"kind": "mystery"}) + "\n")
    with pytest.raises(ValueError, match="record kind"):
        read_trace(path)


def test_blank_lines_tolerated(tmp_path):
    original = _sample_trace()
    path = tmp_path / "gaps.jsonl"
    write_trace(original, path)
    content = path.read_text().replace("\n", "\n\n")
    path.write_text(content)
    loaded = read_trace(path)
    assert loaded.n_sessions() == 3


def test_platform_override_on_write(tmp_path):
    original = _sample_trace()
    path = tmp_path / "override.jsonl"
    write_trace(original, path, platforms={"u1": "iphone"})
    loaded = read_trace(path)
    assert loaded.user("u1").platform == "iphone"
    # ``platforms`` replaces the whole map; users it omits default to wp.
    assert loaded.user("u2").platform == "wp"
