"""Property-based tests for trace generation and show-curve windows."""

import numpy as np
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.core.showcurve import WindowedShowCurveEstimator
from repro.sim.rng import RngRegistry
from repro.traces.generator import TraceConfig, TraceGenerator
from repro.traces.schema import SECONDS_PER_DAY
from repro.traces.stats import epoch_slot_counts, refresh_map
from repro.workloads.appstore import TOP15
from repro.workloads.population import PopulationConfig, build_population


@given(seed=st.integers(min_value=0, max_value=10_000),
       n_users=st.integers(min_value=1, max_value=12),
       n_days=st.integers(min_value=1, max_value=5))
@settings(max_examples=25, deadline=None)
@example(
    seed=651,
    n_users=4,
    n_days=3,
).via('discovered failure')
def test_generated_traces_always_valid(seed, n_users, n_days):
    registry = RngRegistry(seed)
    population = build_population(PopulationConfig(n_users=n_users),
                                  registry.stream("pop"))
    config = TraceConfig(n_days=n_days)
    trace = TraceGenerator(TOP15, config, registry.stream("trace")).generate(
        population)
    assert set(trace.users) == {u.user_id for u in population}
    horizon = n_days * SECONDS_PER_DAY
    for session in trace.all_sessions():
        assert 0.0 <= session.start < horizon
        assert session.end <= horizon
        assert session.duration >= config.min_session_s
    # Epoch counts conserve total slots for any epoch length that
    # divides a day.
    refresh = refresh_map(TOP15)
    for epoch_s in (1800.0, 3600.0, 7200.0):
        counts = epoch_slot_counts(trace, refresh, epoch_s)
        total = sum(int(v.sum()) for v in counts.values())
        expected = sum(len(u.slots(refresh)) for u in trace.users.values())
        assert total == expected


@given(observations=st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=30.0),   # predicted
              st.integers(min_value=0, max_value=20)),     # actual
    min_size=1, max_size=120),
    max_window=st.integers(min_value=1, max_value=5))
@settings(max_examples=100, deadline=None)
def test_windowed_curve_invariants(observations, max_window):
    curve = WindowedShowCurveEstimator(max_window=max_window, min_samples=3)
    for predicted, actual in observations:
        curve.observe("u", predicted, actual)
    for predicted in (0.0, 1.0, 5.0, 20.0):
        previous_value = None
        for window in range(1, max_window + 1):
            # Monotone non-increasing in depth j.
            values = [curve.at_least(predicted, j, window)
                      for j in range(1, 10)]
            assert all(0.0 <= v <= 1.0 + 1e-12 for v in values)
            assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
        # Monotone non-decreasing in window length at fixed depth, for
        # fully-empirical buckets (rolling sums only grow). Blended
        # buckets may not be monotone, so only check with dense data.
        if len(observations) >= 60:
            same_pred = [a for p, a in observations
                         if curve._curves[1].bucket_of(p)
                         == curve._curves[1].bucket_of(5.0)]
            if len(same_pred) >= 20:
                values = [curve.at_least(5.0, 2, w)
                          for w in range(1, max_window + 1)]
                assert all(a <= b + 0.35 for a, b in zip(values, values[1:]))


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=20, deadline=None)
def test_population_profiles_are_valid_distributions(seed):
    registry = RngRegistry(seed)
    population = build_population(PopulationConfig(n_users=8),
                                  registry.stream("pop"))
    for user in population:
        assert abs(sum(user.app_weights) - 1.0) < 1e-9
        pmf = user.diurnal.hourly_pmf()
        assert abs(float(np.sum(pmf)) - 1.0) < 1e-9
        assert user.sessions_per_day > 0
