"""Property-based tests of the radio energy accountant.

The marginal-attribution invariants must hold for *any* chronological
transfer pattern, so we let hypothesis generate the patterns.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio.profiles import LTE, THREE_G, WIFI
from repro.radio.statemachine import RadioStateMachine

profiles = st.sampled_from([THREE_G, LTE, WIFI])

transfer_plan = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=120.0),   # gap to next request
        st.integers(min_value=0, max_value=200_000),  # bytes
        st.sampled_from(["ad", "app"]),
    ),
    min_size=1, max_size=40,
)


def _replay(profile, plan):
    machine = RadioStateMachine(profile)
    t = 0.0
    for gap, nbytes, tag in plan:
        t += gap
        machine.transfer(t, nbytes, tag)
    machine.finalize()
    return machine


@given(profile=profiles, plan=transfer_plan)
@settings(max_examples=150, deadline=None)
def test_per_tag_energy_sums_to_total(profile, plan):
    machine = _replay(profile, plan)
    by_tag = machine.energy_by_tag()
    assert math.isclose(sum(by_tag.values()),
                        machine.communication_energy(), rel_tol=1e-9)
    record_sum = sum(rec.energy for rec in machine.records)
    assert math.isclose(record_sum, machine.communication_energy(),
                        rel_tol=1e-9)


@given(profile=profiles, plan=transfer_plan)
@settings(max_examples=150, deadline=None)
def test_every_charge_is_bounded_by_isolated_cost(profile, plan):
    """No transfer can be charged more than a full cold fetch of itself;
    energies are never negative."""
    machine = _replay(profile, plan)
    for rec in machine.records:
        assert rec.energy >= 0.0
        ceiling = profile.isolated_transfer_energy(rec.nbytes) + 1e-9
        assert rec.energy <= ceiling


@given(profile=profiles, plan=transfer_plan)
@settings(max_examples=100, deadline=None)
def test_wakeups_bounded_by_transfers(profile, plan):
    machine = _replay(profile, plan)
    assert 1 <= machine.wakeups <= len(plan)


@given(profile=profiles,
       nbytes=st.integers(min_value=0, max_value=100_000),
       count=st.integers(min_value=1, max_value=30),
       period=st.floats(min_value=0.1, max_value=300.0))
@settings(max_examples=100, deadline=None)
def test_batching_never_costs_more_than_spreading(profile, nbytes, count,
                                                  period):
    """Back-to-back fetches are always at most as expensive as the same
    fetches spread out — prefetching can only help on the radio."""
    from repro.radio.energy import batched_fetch_energy, periodic_fetch_energy
    batched = batched_fetch_energy(profile, nbytes, count)
    spread = periodic_fetch_energy(profile, nbytes, period, count)
    assert batched <= spread + 1e-6


@given(profile=profiles, plan=transfer_plan,
       horizon_extra=st.floats(min_value=0.0, max_value=60.0))
@settings(max_examples=100, deadline=None)
def test_truncated_finalize_never_exceeds_full_tail(profile, plan,
                                                    horizon_extra):
    machine_full = _replay(profile, plan)
    machine_cut = RadioStateMachine(profile)
    t = 0.0
    for gap, nbytes, tag in plan:
        t += gap
        rec = machine_cut.transfer(t, nbytes, tag)
    machine_cut.finalize(end_time=rec.end_time + horizon_extra)
    assert (machine_cut.communication_energy()
            <= machine_full.communication_energy() + 1e-9)


@given(plan=transfer_plan)
@settings(max_examples=50, deadline=None)
def test_timeline_is_contiguous_and_monotone(plan):
    machine = RadioStateMachine(THREE_G, keep_timeline=True)
    t = 0.0
    for gap, nbytes, tag in plan:
        t += gap
        machine.transfer(t, nbytes, tag)
    machine.finalize()
    timeline = machine.timeline()
    for prev, cur in zip(timeline, timeline[1:]):
        assert cur.start >= prev.start
        assert math.isclose(cur.start, prev.end, abs_tol=1e-9)
        assert cur.end >= cur.start
