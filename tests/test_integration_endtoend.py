"""Integration tests: full prefetch and realtime runs on a tiny world.

These exercise every module together and assert the *accounting
invariants* that must hold for any trace, plus the paper's qualitative
claims at miniature scale.
"""

import pytest

from repro.experiments.harness import ShardJob, execute_shard
from repro.runner import Runner, WorldSource


def _headline(config, world):
    """Whole-population headline comparison via the Runner API."""
    return Runner(config, world=world).run("headline").comparison


def _prefetch_artifacts(config, world):
    """Whole-population instrumented prefetch run via the ShardJob API."""
    execution = execute_shard(ShardJob.for_world(config, world,
                                                 mode="prefetch"))
    assert execution.prefetch is not None
    return execution.prefetch


@pytest.fixture(scope="module")
def headline(tiny_config, tiny_world):
    return _headline(tiny_config, tiny_world)


def test_world_is_cached_and_deterministic(tiny_config):
    source = WorldSource()
    assert source.world_for(tiny_config) is source.world_for(tiny_config)


def test_slot_conservation(headline, tiny_world, tiny_config):
    """Every test-window slot is served exactly once, in both systems."""
    p, r = headline.prefetch, headline.realtime
    start = tiny_config.train_days * 86400.0
    expected_slots = 0
    for timeline in tiny_world.timelines.values():
        mask = (timeline.times >= start) & ((timeline.kinds == 0)
                                            | (timeline.kinds == 3))
        expected_slots += int(mask.sum())
    assert p.total_slots == expected_slots
    assert r.total_slots == expected_slots


def test_sla_accounting_consistent(headline):
    sla = headline.prefetch.sla
    assert sla.n_on_time + sla.n_violated == sla.n_sales
    assert 0.0 <= sla.violation_rate <= 1.0


def test_revenue_accounting_consistent(headline):
    rev = headline.prefetch.revenue
    assert rev.billed_prefetch >= 0 and rev.voided >= 0
    assert rev.paid_impressions <= headline.prefetch.sla.n_sales
    assert rev.total_billed == pytest.approx(
        rev.billed_prefetch + rev.billed_fallback)
    # Identity: every display of a sold-ahead ad is either the paid
    # first impression or a duplicate.
    p = headline.prefetch
    assert (p.cached_displays + p.rescued_displays
            == rev.paid_impressions + rev.duplicate_impressions)


def test_paper_claims_hold_at_miniature_scale(headline):
    assert headline.energy_savings > 0.35
    assert headline.sla_violation_rate < 0.05
    assert abs(headline.revenue_loss) < 0.10
    assert headline.wakeup_reduction > 0.0


def test_prefetch_reduces_ad_energy_not_app_energy(headline):
    p, r = headline.prefetch.energy, headline.realtime.energy
    assert p.ad_joules < r.ad_joules
    # App *traffic* is identical in both runs; app *energy* can differ
    # somewhat because marginal attribution shifts tail ownership when
    # ad fetches disappear from between app requests (with fewer ad
    # transfers keeping the radio warm, app requests pay more of their
    # own promotions).
    assert p.app_bytes == r.app_bytes
    assert p.app_joules == pytest.approx(r.app_joules, rel=0.25)
    assert p.app_joules >= r.app_joules * 0.98
    # Total communication energy still falls.
    assert p.communication_joules < r.communication_joules


def test_runs_are_deterministic(tiny_config, tiny_world):
    a = _prefetch_artifacts(tiny_config, tiny_world).outcome
    b = _prefetch_artifacts(tiny_config, tiny_world).outcome
    assert a.energy.ad_joules == pytest.approx(b.energy.ad_joules)
    assert a.sla.n_violated == b.sla.n_violated
    assert a.revenue.total_billed == pytest.approx(b.revenue.total_billed)
    job = ShardJob.for_world(tiny_config, tiny_world, mode="realtime")
    ra = execute_shard(job).realtime
    rb = execute_shard(job).realtime
    assert ra.billed_revenue == pytest.approx(rb.billed_revenue)


def test_instrumented_run_exposes_consistent_state(tiny_config, tiny_world):
    artifacts = _prefetch_artifacts(tiny_config, tiny_world)
    outcome = artifacts.outcome
    assert len(artifacts.devices) == tiny_world.trace.n_users
    assert len(artifacts.clients) == tiny_world.trace.n_users
    server = artifacts.server
    assert len(server.display_log) >= outcome.revenue.paid_impressions
    assert server.syncs == outcome.syncs
    client_displays = sum(c.stats.cached_displays + c.stats.rescued_displays
                          for c in artifacts.clients.values())
    assert client_displays == len(server.display_log)


def test_oracle_dominates_learned_predictor(tiny_config, tiny_world):
    from repro.baselines.presets import apply_preset
    learned = _headline(tiny_config, tiny_world)
    oracle = _headline(apply_preset("oracle", tiny_config), tiny_world)
    assert oracle.energy_savings > learned.energy_savings


def test_naive_prefetch_violates_far_more(tiny_config, tiny_world):
    from repro.baselines.presets import apply_preset
    full = _headline(tiny_config, tiny_world)
    naive = _headline(apply_preset("naive-prefetch", tiny_config),
                      tiny_world)
    assert naive.sla_violation_rate > 5 * full.sla_violation_rate
