"""Unit tests for the exchange facade (selling + deferred billing)."""

import pytest

from repro.exchange.auction import AuctionConfig
from repro.exchange.campaign import ANY, Campaign
from repro.exchange.marketplace import Exchange
from repro.sim.rng import RngRegistry


def _exchange(bids=(1.0, 2.0, 3.0), reserve=0.1, seed=5) -> Exchange:
    campaigns = [Campaign(f"c{i}", "a", bid=b, budget=1e9)
                 for i, b in enumerate(bids)]
    config = AuctionConfig(reserve_price=reserve, bid_jitter_sigma=1e-9)
    return Exchange(campaigns, config, RngRegistry(seed).fresh("x"))


def test_duplicate_campaign_ids_rejected():
    campaigns = [Campaign("dup", "a", 1.0, 10.0),
                 Campaign("dup", "a", 1.0, 10.0)]
    with pytest.raises(ValueError):
        Exchange(campaigns, AuctionConfig(), RngRegistry(0).fresh("x"))


def test_sell_now_bills_immediately():
    ex = _exchange()
    sale = ex.sell_now(10.0)
    assert sale is not None
    assert not sale.has_deadline
    assert ex.billed_revenue == pytest.approx(sale.price)
    assert ex.booked_revenue == pytest.approx(sale.price)
    assert ex.campaign(sale.campaign_id).impressions == 1


def test_sell_now_respects_targeting():
    campaigns = [Campaign("g", "a", 5.0, 1e9, category="game"),
                 Campaign("n", "a", 1.0, 1e9, category="news")]
    ex = Exchange(campaigns, AuctionConfig(bid_jitter_sigma=1e-9),
                  RngRegistry(1).fresh("x"))
    sale = ex.sell_now(0.0, category="news")
    assert sale.campaign_id == "n"


def test_sell_ahead_defers_billing_but_commits_budget():
    ex = _exchange()
    sales = ex.sell_ahead(0.0, 10, deadline=3600.0)
    assert len(sales) == 10
    assert all(s.deadline == 3600.0 for s in sales)
    assert ex.billed_revenue == 0.0
    assert ex.booked_revenue == pytest.approx(sum(s.price for s in sales))
    assert ex.sales_count == 10
    # Budget committed at sale time: demand depletes like real-time.
    committed = sum(c.spent for c in ex.campaigns)
    assert committed == pytest.approx(ex.booked_revenue)


def test_sell_ahead_ignores_category_targeting():
    """Predicted slots are run-of-network: targeted campaigns still bid."""
    campaigns = [Campaign("g", "a", 5.0, 1e9, category="game")]
    ex = Exchange(campaigns, AuctionConfig(bid_jitter_sigma=1e-9),
                  RngRegistry(1).fresh("x"))
    sales = ex.sell_ahead(0.0, 3, deadline=10.0)
    assert len(sales) == 3


def test_sell_ahead_respects_platform_targeting():
    campaigns = [Campaign("w", "a", 5.0, 1e9, platform="wp")]
    ex = Exchange(campaigns, AuctionConfig(bid_jitter_sigma=1e-9),
                  RngRegistry(1).fresh("x"))
    assert len(ex.sell_ahead(0.0, 2, deadline=10.0, platform="iphone")) == 0
    assert len(ex.sell_ahead(0.0, 2, deadline=10.0, platform="wp")) == 2


def test_sell_ahead_rejects_past_deadline():
    ex = _exchange()
    with pytest.raises(ValueError):
        ex.sell_ahead(100.0, 1, deadline=100.0)


def test_settlement_paths():
    ex = _exchange()
    shown, violated = ex.sell_ahead(0.0, 2, deadline=50.0)
    spent_before = {c.campaign_id: c.spent for c in ex.campaigns}
    ex.settle_shown(shown)
    ex.settle_violated(violated)
    assert ex.billed_revenue == pytest.approx(shown.price)
    assert ex.voided_revenue == pytest.approx(violated.price)
    # The shown sale's budget stays committed; the violated one refunds.
    assert ex.campaign(shown.campaign_id).spent == pytest.approx(
        spent_before[shown.campaign_id]
        - (violated.price if shown.campaign_id == violated.campaign_id
           else 0.0))


def test_budget_exhaustion_removes_campaign():
    campaigns = [Campaign("c0", "a", bid=10.0, budget=15.0)]
    ex = Exchange(campaigns, AuctionConfig(reserve_price=8.0,
                                           bid_jitter_sigma=1e-9),
                  RngRegistry(2).fresh("x"))
    first = ex.sell_now(0.0)
    assert first is not None and first.price == pytest.approx(8.0)
    # Budget 15, spent 8, remaining 7 < bid 10: the campaign must leave
    # the market rather than risk another full-price win.
    assert ex.active_campaigns() == 0
    assert ex.sell_now(1.0) is None


def test_sale_ids_unique_and_monotonic():
    ex = _exchange()
    sales = ex.sell_ahead(0.0, 5, deadline=10.0)
    ids = [s.sale_id for s in sales]
    assert ids == sorted(ids)
    assert len(set(ids)) == 5


def test_mean_clearing_price():
    ex = _exchange()
    assert ex.mean_clearing_price() == 0.0
    sales = ex.sell_ahead(0.0, 4, deadline=10.0)
    expected = sum(s.price for s in sales) / 4
    assert ex.mean_clearing_price() == pytest.approx(expected)
