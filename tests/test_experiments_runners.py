"""Tests for the experiment runners (fast artifacts only; the sweeps
are covered by the benchmark suite at bench scale)."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.e1_app_energy import DISPLAY_POWER_W, measure_app, run_e1
from repro.experiments.e2_tail_energy import run_e2
from repro.experiments.e3_traces import run_e3
from repro.experiments.e4_prediction import run_e4
from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment
from repro.radio.profiles import THREE_G
from repro.workloads.appstore import get_app


def test_e1_reproduces_the_measurement_study():
    study = run_e1()
    assert len(study.rows) == 15
    # The paper's anchored numbers: ~65% of communication energy,
    # ~23% of total energy, on average.
    assert 0.55 <= study.mean_ad_share_of_communication <= 0.75
    assert 0.18 <= study.mean_ad_share_of_total <= 0.30
    rendered = study.render()
    assert "MEAN" in rendered and "puzzle_blocks" in rendered


def test_e1_offline_apps_have_pure_ad_traffic():
    row = measure_app(get_app("puzzle_blocks"), THREE_G)
    assert row.ad_share_of_communication == pytest.approx(1.0)
    assert row.app_joules == 0.0
    assert row.display_joules == pytest.approx(
        10 * get_app("puzzle_blocks").session_median_s * DISPLAY_POWER_W)


def test_e1_online_apps_dilute_ad_share():
    row = measure_app(get_app("internet_radio"), THREE_G)
    assert row.ad_share_of_communication < 0.2


def test_e2_amortization_shape():
    figure = run_e2()
    for radio in ("3g", "lte"):
        series = figure.series[radio]
        values = [v for _, v in series]
        assert all(a > b for a, b in zip(values, values[1:]))
        assert figure.amortization_ratio(radio) > 5.0
    assert "batch" in figure.render()


def test_e3_characterization(tiny_config):
    figure = run_e3(tiny_config)
    assert figure.summary.n_users == tiny_config.n_users
    assert figure.summary.day_over_day_autocorrelation > 0.3
    assert figure.peak_to_trough > 3.0     # strong diurnal rhythm
    quantiles = [v for _, v in figure.slots_cdf_probes]
    assert quantiles == sorted(quantiles)
    assert "characterization" in figure.render()


def test_e4_prediction_figure(tiny_config):
    figure = run_e4(tiny_config, models=("last_value", "time_of_day",
                                         "oracle"))
    assert figure.summary_for("oracle").mae == 0.0
    assert (figure.summary_for("time_of_day").rmse
            < figure.summary_for("last_value").rmse)
    with pytest.raises(KeyError):
        figure.summary_for("nope")
    assert "accuracy" in figure.render()


def test_registry_is_complete():
    ids = experiment_ids()
    assert ids == [f"e{i}" for i in range(1, 14)] + ["x1", "x2"]
    for eid in ids:
        assert EXPERIMENTS[eid].title
        assert EXPERIMENTS[eid].paper_artifact


def test_run_experiment_dispatch(tiny_config):
    figure = run_experiment("e2", tiny_config)
    assert figure.batches
    with pytest.raises(KeyError):
        run_experiment("e99")
