"""Unit + property tests for the closed-form overbooking analysis."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    expected_duplicates,
    marginal_value,
    operating_point,
    replicas_for_epsilon,
    tradeoff_curve,
    violation_probability,
)


def test_replicas_for_epsilon_by_hand():
    assert replicas_for_epsilon(0.99, 0.01) == 1
    assert replicas_for_epsilon(0.9, 0.01) == 2
    assert replicas_for_epsilon(0.8, 0.01) == 3
    assert replicas_for_epsilon(0.5, 0.01) == 7
    assert replicas_for_epsilon(1.0, 1e-9) == 1


def test_replicas_for_epsilon_caps_and_validates():
    assert replicas_for_epsilon(0.1, 1e-6, max_replicas=4) == 4
    assert replicas_for_epsilon(0.0, 0.5, max_replicas=3) == 3
    with pytest.raises(ValueError):
        replicas_for_epsilon(0.0, 0.5)
    with pytest.raises(ValueError):
        replicas_for_epsilon(0.5, 0.0)
    with pytest.raises(ValueError):
        replicas_for_epsilon(1.5, 0.1)


def test_violation_and_duplicates_by_hand():
    assert violation_probability([0.5, 0.5]) == pytest.approx(0.25)
    assert expected_duplicates([0.5]) == pytest.approx(0.0)
    assert expected_duplicates([0.9, 0.9]) == pytest.approx(
        1.8 - (1 - 0.01))
    with pytest.raises(ValueError):
        violation_probability([1.5])


def test_marginal_value_increasing_in_p():
    values = [marginal_value(p) for p in (0.1, 0.5, 0.9, 0.99)]
    assert all(a < b for a, b in zip(values, values[1:]))
    with pytest.raises(ValueError):
        marginal_value(1.0)


def test_operating_point_meets_epsilon():
    pt = operating_point(0.8, 0.01)
    assert pt.k == 3
    assert pt.achieved_violation <= 0.01
    assert pt.duplicate_rate == pytest.approx(
        expected_duplicates([0.8] * 3))


def test_tradeoff_curve_shapes():
    curve = tradeoff_curve(0.6, range(1, 7))
    violations = [v for _, v, _ in curve]
    duplicates = [d for _, _, d in curve]
    assert all(a > b for a, b in zip(violations, violations[1:]))
    assert all(a <= b for a, b in zip(duplicates, duplicates[1:]))
    with pytest.raises(ValueError):
        tradeoff_curve(0.5, [0])


@given(p=st.floats(min_value=0.01, max_value=0.99),
       epsilon=st.floats(min_value=1e-6, max_value=0.5))
@settings(max_examples=300, deadline=None)
def test_replicas_property(p, epsilon):
    """k replicas reach epsilon; k-1 do not (minimality)."""
    k = replicas_for_epsilon(p, epsilon)
    assert (1 - p) ** k <= epsilon + 1e-12
    if k > 1:
        assert (1 - p) ** (k - 1) > epsilon - 1e-12


@given(ps=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1,
                   max_size=10))
@settings(max_examples=300, deadline=None)
def test_duplicates_bounds_property(ps):
    """0 <= E[dups] <= k-1, and displays decompose consistently."""
    dups = expected_duplicates(ps)
    assert -1e-9 <= dups <= len(ps) - 1 + 1e-9
    shown = 1.0 - violation_probability(ps)
    assert sum(ps) == pytest.approx(shown + dups)
