"""Unit tests for prediction-error bookkeeping."""

import numpy as np
import pytest

from repro.prediction.errors import (
    PredictionLog,
    error_cdf,
    normalized_error,
    summarize_log,
)


def _log(pairs, model="m") -> PredictionLog:
    log = PredictionLog(model)
    for predicted, actual in pairs:
        log.record(predicted, actual)
    return log


def test_record_and_residuals():
    log = _log([(3.0, 2), (1.0, 4)])
    assert len(log) == 2
    assert log.residuals().tolist() == [1.0, -3.0]
    with pytest.raises(ValueError):
        log.record(-1.0, 2)


def test_summary_by_hand():
    log = _log([(5.0, 5), (7.0, 5), (3.0, 5), (5.0, 6)])
    s = summarize_log(log)
    assert s.n == 4
    assert s.mae == pytest.approx((0 + 2 + 2 + 1) / 4)
    assert s.rmse == pytest.approx(np.sqrt((0 + 4 + 4 + 1) / 4))
    assert s.bias == pytest.approx((0 + 2 - 2 - 1) / 4)
    assert s.over_rate == pytest.approx(0.25)
    assert s.under_rate == pytest.approx(0.5)
    assert s.exact_rate == pytest.approx(0.25)


def test_summary_rejects_empty_log():
    with pytest.raises(ValueError):
        summarize_log(PredictionLog("m"))


def test_error_cdf_sorted_and_complete():
    log = _log([(2.0, 0), (0.0, 1), (5.0, 5)])
    values, probs = error_cdf(log)
    assert values.tolist() == [0.0, 1.0, 2.0]
    assert probs[-1] == pytest.approx(1.0)
    with pytest.raises(ValueError):
        error_cdf(PredictionLog("m"))


def test_normalized_error_guards_zero_actuals():
    log = _log([(2.0, 0), (4.0, 2)])
    ne = normalized_error(log)
    assert ne.tolist() == [2.0, 1.0]


def test_merge_pools_same_model_only():
    a = _log([(1.0, 1)], model="x")
    b = _log([(2.0, 2)], model="x")
    merged = a.merged(b)
    assert len(merged) == 2
    c = _log([(1.0, 1)], model="y")
    with pytest.raises(ValueError):
        a.merged(c)
