"""Unit tests for the app catalog and population sampling."""

import numpy as np
import pytest

from repro.sim.rng import RngRegistry
from repro.workloads.appstore import (
    CATALOG,
    TOP15,
    AppProfile,
    catalog_weights,
    get_app,
)
from repro.workloads.population import (
    PopulationConfig,
    build_population,
    sample_user,
)


def test_catalog_has_fifteen_unique_apps():
    assert len(TOP15) == 15
    assert len(CATALOG) == 15
    assert get_app("puzzle_blocks").category == "game"
    with pytest.raises(KeyError):
        get_app("nope")


def test_catalog_mix_has_offline_and_online_apps():
    offline = [a for a in TOP15 if a.is_offline]
    online = [a for a in TOP15 if not a.is_offline]
    assert len(offline) >= 5
    assert len(online) >= 5


def test_catalog_weights_normalised():
    weights = catalog_weights()
    assert sum(weights) == pytest.approx(1.0)
    assert all(w > 0 for w in weights)


def test_slots_in_session():
    app = get_app("puzzle_blocks")  # 30 s refresh
    assert app.slots_in_session(0.0) == 1
    assert app.slots_in_session(29.9) == 1
    assert app.slots_in_session(30.0) == 2
    assert app.slots_in_session(90.0) == 4
    assert app.slot_times_offsets(90.0) == [0.0, 30.0, 60.0, 90.0]
    assert app.slot_times_offsets(89.0) == [0.0, 30.0, 60.0]
    with pytest.raises(ValueError):
        app.slots_in_session(-1.0)


def test_app_profile_validation():
    with pytest.raises(ValueError):
        AppProfile("x", "game", 0.0, 60.0, 0.5, 30.0, 4000, None, 0)
    with pytest.raises(ValueError):
        AppProfile("x", "game", 1.0, -1.0, 0.5, 30.0, 4000, None, 0)
    with pytest.raises(ValueError):
        AppProfile("x", "game", 1.0, 60.0, 0.5, 0.0, 4000, None, 0)


def test_population_config_validation():
    with pytest.raises(ValueError):
        PopulationConfig(n_users=0)
    with pytest.raises(ValueError):
        PopulationConfig(wp_fraction=1.5)
    with pytest.raises(ValueError):
        PopulationConfig(median_sessions_per_day=0.0)


def test_sample_user_fields(rng):
    user = sample_user("u1", PopulationConfig(), rng)
    assert user.user_id == "u1"
    assert user.platform in ("wp", "iphone")
    assert user.sessions_per_day > 0
    assert len(user.app_weights) == len(TOP15)
    assert sum(user.app_weights) == pytest.approx(1.0)


def test_population_is_heterogeneous_and_deterministic():
    pop1 = build_population(PopulationConfig(n_users=100),
                            RngRegistry(5).stream("pop"))
    pop2 = build_population(PopulationConfig(n_users=100),
                            RngRegistry(5).stream("pop"))
    assert [u.sessions_per_day for u in pop1] == [u.sessions_per_day for u in pop2]
    rates = np.array([u.sessions_per_day for u in pop1])
    assert rates.std() > 0.2 * rates.mean()   # heavy heterogeneity
    assert len({u.user_id for u in pop1}) == 100


def test_platform_split_roughly_matches_config():
    pop = build_population(PopulationConfig(n_users=400, wp_fraction=0.6),
                           RngRegistry(5).stream("pop"))
    wp = sum(1 for u in pop if u.platform == "wp")
    assert 0.5 < wp / 400 < 0.7


def test_daily_rate_weekend_factor(rng):
    user = sample_user("u2", PopulationConfig(), rng)
    weekday_rates = [user.daily_rate(2, rng) for _ in range(200)]
    weekend_rates = [user.daily_rate(5, rng) for _ in range(200)]
    ratio = np.mean(weekend_rates) / np.mean(weekday_rates)
    assert ratio == pytest.approx(user.weekend_factor, rel=0.2)
