"""Tests for the repro.dist wire contract and the chaos plan.

Covers the JSON round-trip of every protocol message (the property the
future socket transport rests on), the tagged decoder, the Manager
transport's offer/claim/send/collect plumbing, and the seeded purity of
:func:`repro.faults.chaos.chaos_decision`.
"""

from __future__ import annotations

import json

import pytest

from repro.dist.protocol import (
    MESSAGE_TYPES,
    PROTOCOL_VERSION,
    JobAck,
    JobEnvelope,
    JobNack,
    ResultEnvelope,
    WorkerBeat,
    WorkerHello,
    message_from_jsonable,
)
from repro.dist.transport import STOP, ManagerTransport
from repro.faults.chaos import ChaosDecision, CoordinatorChaos, chaos_decision

_SAMPLES = [
    WorkerHello(worker_id="w0", pid=1234),
    WorkerBeat(worker_id="w1", busy=True, job_id="shard-002", jobs_done=3),
    JobEnvelope(job_id="shard-005", shard_index=5, n_shards=8, attempt=1,
                lease_s=30.0),
    JobAck(worker_id="w2", job_id="shard-001", shard_index=1, attempt=0),
    JobNack(worker_id="w0", job_id="shard-003", shard_index=3, attempt=2,
            reason="ValueError: boom"),
    ResultEnvelope(worker_id="w1", job_id="shard-000", shard_index=0,
                   attempt=0, elapsed_s=1.25),
]


# ---------------------------------------------------------------------
# Protocol messages
# ---------------------------------------------------------------------


@pytest.mark.parametrize("message", _SAMPLES,
                         ids=[type(m).__name__ for m in _SAMPLES])
def test_message_json_round_trip(message):
    payload = message.to_jsonable()
    assert payload["type"] == type(message).__name__
    # Honest JSON: survives an actual serialize/parse cycle.
    restored = message_from_jsonable(json.loads(json.dumps(payload)))
    assert restored == message


def test_every_registered_type_is_covered_by_a_sample():
    assert sorted(MESSAGE_TYPES) == sorted(
        type(m).__name__ for m in _SAMPLES)


def test_hello_carries_the_protocol_version():
    assert WorkerHello(worker_id="w").protocol == PROTOCOL_VERSION


def test_from_jsonable_rejects_unknown_fields_and_wrong_type():
    good = JobAck(worker_id="w", job_id="j", shard_index=0,
                  attempt=0).to_jsonable()
    with pytest.raises(ValueError, match="unknown JobAck field"):
        JobAck.from_jsonable({**good, "bogus": 1})
    with pytest.raises(ValueError, match="not a JobNack"):
        JobNack.from_jsonable(good)
    with pytest.raises(ValueError, match="unknown dist protocol message"):
        message_from_jsonable({"type": "Mystery"})


def test_messages_are_frozen():
    envelope = _SAMPLES[2]
    with pytest.raises(AttributeError):
        envelope.attempt = 9  # type: ignore[misc]


# ---------------------------------------------------------------------
# Manager transport
# ---------------------------------------------------------------------


def test_manager_transport_round_trip():
    transport = ManagerTransport()
    try:
        endpoint = transport.worker_endpoint()
        envelope = JobEnvelope(job_id="shard-000", shard_index=0,
                               n_shards=1)
        transport.offer(envelope, {"payload": "task"})
        claimed = endpoint.claim(2.0)
        assert claimed == (envelope, {"payload": "task"})
        assert endpoint.claim(0.05) is None          # queue drained
        reply = ResultEnvelope(worker_id="w0", job_id="shard-000",
                               shard_index=0, attempt=0)
        endpoint.send(reply, {"payload": "result"})
        assert transport.collect(2.0) == (reply, {"payload": "result"})
        assert transport.collect(0.05) is None
        transport.offer_stop()
        assert endpoint.claim(2.0) == (STOP, None)
    finally:
        transport.close()


# ---------------------------------------------------------------------
# Chaos plans
# ---------------------------------------------------------------------


def test_chaos_plan_round_trip_and_digest(tmp_path):
    plan = CoordinatorChaos(seed=7, kill_prob=0.25, duplicate_prob=0.5,
                            delay_mean_s=0.1)
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(plan.to_jsonable()))
    assert CoordinatorChaos.from_json_file(path) == plan
    assert plan.digest() == plan.variant().digest()
    assert plan.digest() != plan.variant(seed=8).digest()
    with pytest.raises(ValueError, match="unknown CoordinatorChaos"):
        CoordinatorChaos.from_jsonable({"seed": 1, "bogus": 2})


def test_chaos_plan_validates_probabilities():
    with pytest.raises(ValueError, match="kill_prob"):
        CoordinatorChaos(kill_prob=1.5)
    with pytest.raises(ValueError, match="duplicate_prob"):
        CoordinatorChaos(duplicate_prob=-0.1)
    with pytest.raises(ValueError, match="delay_mean_s"):
        CoordinatorChaos(delay_mean_s=-1.0)


def test_empty_plan_is_inert_and_touches_no_stream():
    assert CoordinatorChaos().is_empty
    assert chaos_decision(None, "shard-000", 0) == ChaosDecision()
    assert chaos_decision(CoordinatorChaos(seed=9), "shard-000",
                          0) == ChaosDecision()


def test_chaos_decision_is_a_pure_function_of_plan_job_attempt():
    plan = CoordinatorChaos(seed=3, kill_prob=0.5, duplicate_prob=0.5,
                            delay_mean_s=0.01)
    first = [chaos_decision(plan, f"shard-{i:03d}", a)
             for i in range(8) for a in range(2)]
    second = [chaos_decision(plan, f"shard-{i:03d}", a)
              for i in range(8) for a in range(2)]
    assert first == second                          # replayable
    assert len({(d.kill, d.duplicate, round(d.delay_s, 9))
                for d in first}) > 1                # actually varies


def test_kills_fire_on_first_attempt_only_by_default():
    plan = CoordinatorChaos(seed=1, kill_prob=1.0)
    assert chaos_decision(plan, "shard-000", 0).kill
    assert not chaos_decision(plan, "shard-000", 1).kill
    relentless = plan.variant(first_attempt_only=False)
    assert chaos_decision(relentless, "shard-000", 1).kill
