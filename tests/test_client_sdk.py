"""Unit tests for the client SDK against a scripted fake server."""

import numpy as np
import pytest

from repro.client.device import Device
from repro.client.sdk import AdClient
from repro.client.timeline import (
    KIND_APP,
    KIND_SLOT,
    KIND_SLOT_START,
    ClientTimeline,
)
from repro.core.overbooking import Assignment
from repro.exchange.marketplace import Sale
from repro.radio.profiles import THREE_G
from repro.server.adserver import SyncResponse
from repro.workloads.appstore import TOP15


class FakeServer:
    """Scripted server: records calls, returns canned responses."""

    def __init__(self, assignments=None, rescue_sales=None,
                 invalidate_on_sync=frozenset()):
        self.assignments = list(assignments or [])
        self.rescue_sales = list(rescue_sales or [])
        self.invalidate_on_sync = set(invalidate_on_sync)
        self.syncs: list[tuple[float, list]] = []
        self.reports: list[tuple[float, list]] = []
        self.displays: list[tuple[int, str, float]] = []
        self.fallbacks = 0
        self.fallback_result = None

    def sync(self, user_id, now, reports):
        self.syncs.append((now, list(reports)))
        assignments, self.assignments = self.assignments, []
        nbytes = 400 + sum(a.sale.creative_bytes for a in assignments)
        return SyncResponse(assignments=assignments,
                            invalidated_ids=set(self.invalidate_on_sync),
                            nbytes=nbytes)

    def report(self, user_id, reports):
        self.reports.append((0.0, list(reports)))
        return set()

    def rescue(self, user_id, now):
        rescued, self.rescue_sales = self.rescue_sales, []
        return rescued

    def record_display(self, sale_id, user_id, time):
        self.displays.append((sale_id, user_id, time))

    def realtime_fill(self, now, category, platform):
        self.fallbacks += 1
        return self.fallback_result


def _sale(sale_id, deadline=1e9) -> Sale:
    return Sale(sale_id=sale_id, campaign_id="c", price=1.0,
                creative_bytes=4000, sold_at=0.0, deadline=deadline)


def _timeline(events) -> ClientTimeline:
    """events: list of (time, kind, payload)."""
    times = np.array([e[0] for e in events], dtype=np.float64)
    kinds = np.array([e[1] for e in events], dtype=np.int8)
    payload = np.array([e[2] for e in events], dtype=np.float64)
    return ClientTimeline("u1", "wp", times, kinds, payload)


def _client(events, **kwargs) -> AdClient:
    timeline = _timeline(events)
    return AdClient(timeline, Device("u1", THREE_G), TOP15, **kwargs)


def test_first_slot_triggers_sync_then_serves_from_cache():
    server = FakeServer(assignments=[Assignment(_sale(1)),
                                     Assignment(_sale(2))])
    client = _client([(10.0, KIND_SLOT_START, 0), (40.0, KIND_SLOT, 0)])
    client.run_epoch(0.0, 3600.0, server)
    assert len(server.syncs) == 1
    assert server.syncs[0][0] == 10.0
    assert [d[0] for d in server.displays] == [1, 2]
    assert client.stats.cached_displays == 2
    assert client.stats.syncs == 1
    assert server.fallbacks == 0


def test_no_slots_means_no_sync():
    server = FakeServer()
    client = _client([(5.0, KIND_APP, 6000)])
    client.run_epoch(0.0, 3600.0, server)
    assert server.syncs == []
    assert client.device.app_bytes == 6000


def test_dry_cache_tries_rescue_then_fallback():
    server = FakeServer(rescue_sales=[_sale(9)])
    client = _client([(10.0, KIND_SLOT_START, 0), (40.0, KIND_SLOT, 0)])
    server.fallback_result = _sale(77)
    client.run_epoch(0.0, 3600.0, server)
    # Slot 1: empty cache, rescue returns sale 9 -> rescued display.
    assert client.stats.rescued_displays == 1
    # Slot 2: rescue empty, fallback fills.
    assert client.stats.fallback_displays == 1
    assert server.fallbacks == 1
    assert (9, "u1", 10.0) in server.displays


def test_house_ad_when_nothing_available():
    server = FakeServer()
    client = _client([(10.0, KIND_SLOT_START, 0)])
    client.run_epoch(0.0, 3600.0, server)
    assert client.stats.house_displays == 1


def test_invalidation_applied_before_display():
    server = FakeServer(assignments=[Assignment(_sale(1))])
    client = _client([(10.0, KIND_SLOT_START, 0)])
    client.run_epoch(0.0, 3600.0, server)
    assert client.stats.cached_displays == 1
    # Next epoch: the server says sale 2 was shown elsewhere.
    server2 = FakeServer(assignments=[Assignment(_sale(2)),
                                      Assignment(_sale(3))],
                         invalidate_on_sync={2})
    client2 = _client([(10.0, KIND_SLOT_START, 0), (40.0, KIND_SLOT, 0)])
    client2.run_epoch(0.0, 3600.0, server2)
    # sale 2 installed then... invalidation arrives with the same sync,
    # before install, so both queue entries remain; what matters is that
    # previously-queued copies are dropped. Simulate that directly:
    client2.queue.invalidate({3})
    assert client2.queue.peek_ids() == []


def test_session_start_syncs_again_when_state_pending():
    server = FakeServer(assignments=[Assignment(_sale(1)),
                                     Assignment(_sale(2)),
                                     Assignment(_sale(3))])
    events = [(10.0, KIND_SLOT_START, 0),          # session 1
              (2000.0, KIND_SLOT_START, 0)]        # session 2, queue not empty
    client = _client(events)
    client.run_epoch(0.0, 3600.0, server)
    assert len(server.syncs) == 2


def test_session_start_skips_sync_with_empty_state():
    server = FakeServer()
    events = [(10.0, KIND_SLOT_START, 0), (2000.0, KIND_SLOT_START, 0)]
    client = _client(events)
    client.run_epoch(0.0, 3600.0, server)
    assert len(server.syncs) == 1   # only the epoch's first slot


def test_reports_ride_next_sync():
    # Huge report delay: the background beacon never fires, so the
    # report must travel with the next epoch's sync.
    server = FakeServer(assignments=[Assignment(_sale(1))])
    client = _client([(10.0, KIND_SLOT_START, 0)], report_delay_s=1e9)
    client.run_epoch(0.0, 3600.0, server)
    server.assignments = []
    client.timeline = _timeline([(4000.0, KIND_SLOT_START, 0)])
    client.run_epoch(3600.0, 7200.0, server)
    reported = [r for _, reports in server.syncs for r in reports]
    assert (1, 10.0) in reported


def test_overdue_beacon_fires_and_costs_radio():
    server = FakeServer(assignments=[Assignment(_sale(1))])
    client = _client([(10.0, KIND_SLOT_START, 0)], report_delay_s=300.0)
    sync_bytes = 400 + 4000
    client.run_epoch(0.0, 3600.0, server)
    # The display at t=10 went unreported in-session; the background
    # timer (run at the end of the epoch replay) fired a beacon at 310.
    assert server.reports and server.reports[-1][1] == [(1, 10.0)]
    assert client.device.ad_bytes == sync_bytes + client.report_bytes
    # Idempotent once flushed.
    client.flush_overdue(2000.0, 3600.0, server)
    assert len(server.reports) == 1


def test_app_events_piggyback_reports():
    server = FakeServer(assignments=[Assignment(_sale(1))])
    client = _client([(10.0, KIND_SLOT_START, 0), (20.0, KIND_APP, 5000)])
    client.run_epoch(0.0, 3600.0, server)
    # The display at t=10 was flushed on the app request at t=20.
    assert server.reports and (1, 10.0) in server.reports[-1][1]


def test_expired_cache_entries_dropped_at_sync():
    server = FakeServer(assignments=[Assignment(_sale(1, deadline=50.0))])
    client = _client([(10.0, KIND_SLOT_START, 0)])
    client.run_epoch(0.0, 3600.0, server)
    assert client.stats.cached_displays == 1   # still valid at t=10
    stale = FakeServer(assignments=[Assignment(_sale(2, deadline=5.0))])
    client2 = _client([(10.0, KIND_SLOT_START, 0)])
    client2.run_epoch(0.0, 3600.0, stale)
    assert client2.stats.cached_displays == 0
    assert client2.queue.stats.expired == 1
