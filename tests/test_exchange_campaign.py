"""Unit tests for advertisers and campaigns."""

import pytest

from repro.exchange.campaign import (
    ANY,
    Campaign,
    CampaignPoolConfig,
    build_campaigns,
)
from repro.sim.rng import RngRegistry


def _campaign(**overrides) -> Campaign:
    params = dict(campaign_id="c1", advertiser="a", bid=2.0, budget=100.0)
    params.update(overrides)
    return Campaign(**params)


def test_validation():
    with pytest.raises(ValueError):
        _campaign(bid=0.0)
    with pytest.raises(ValueError):
        _campaign(budget=0.0)


def test_targeting_matches():
    c = _campaign(category="game", platform=ANY)
    assert c.matches("game", "wp")
    assert not c.matches("news", "wp")
    wildcard = _campaign()
    assert wildcard.matches("anything", "iphone")
    platform_locked = _campaign(platform="wp")
    assert platform_locked.matches("game", "wp")
    assert not platform_locked.matches("game", "iphone")


def test_charge_and_budget_exhaustion():
    c = _campaign(bid=10.0, budget=25.0)
    assert c.active
    c.charge(10.0)
    c.charge(10.0)
    assert c.spent == 20.0
    assert c.impressions == 2
    c.charge(5.0)
    assert not c.active
    with pytest.raises(ValueError):
        c.charge(-1.0)


def test_pool_config_validation():
    with pytest.raises(ValueError):
        CampaignPoolConfig(n_campaigns=0)
    with pytest.raises(ValueError):
        CampaignPoolConfig(targeted_fraction=2.0)


def test_build_campaigns_population():
    rng = RngRegistry(3).stream("campaigns")
    campaigns = build_campaigns(CampaignPoolConfig(n_campaigns=200), rng)
    assert len(campaigns) == 200
    assert len({c.campaign_id for c in campaigns}) == 200
    assert all(c.bid > 0 and c.budget > 0 for c in campaigns)
    targeted = sum(1 for c in campaigns if c.category != ANY)
    assert 0.15 < targeted / 200 < 0.5
    bytes_ok = all(2500 <= c.creative_bytes <= 6000 for c in campaigns)
    assert bytes_ok


def test_build_campaigns_deterministic():
    a = build_campaigns(CampaignPoolConfig(n_campaigns=50),
                        RngRegistry(3).fresh("campaigns"))
    b = build_campaigns(CampaignPoolConfig(n_campaigns=50),
                        RngRegistry(3).fresh("campaigns"))
    assert [c.bid for c in a] == [c.bid for c in b]
    assert [c.category for c in a] == [c.category for c in b]
