"""Unit tests for show-curve estimation."""

import math

import pytest

from repro.core.showcurve import (
    BUCKET_EDGES,
    MAX_DEPTH,
    DispatchCurve,
    ScaledShowCurve,
    ShowCurveEstimator,
    WindowedShowCurveEstimator,
    poisson_tail,
)


def test_poisson_tail_basics():
    assert poisson_tail(5.0, 0) == 1.0
    assert poisson_tail(0.0, 3) == 0.0
    assert poisson_tail(2.0, 1) == pytest.approx(1 - math.exp(-2.0))
    # Monotone in j, increasing in rate.
    assert poisson_tail(3.0, 2) > poisson_tail(3.0, 5)
    assert poisson_tail(8.0, 5) > poisson_tail(2.0, 5)
    assert 0.0 <= poisson_tail(100.0, 250) <= 1.0


def test_bucket_assignment():
    assert ShowCurveEstimator.bucket_of(0.0) == 0
    assert ShowCurveEstimator.bucket_of(0.4) == 0
    assert ShowCurveEstimator.bucket_of(1.0) == 1
    assert ShowCurveEstimator.bucket_of(1e9) == len(BUCKET_EDGES) - 2
    with pytest.raises(ValueError):
        ShowCurveEstimator.bucket_of(-0.1)


def test_prior_used_before_data():
    curve = ShowCurveEstimator(min_samples=10)
    assert curve.at_least(4.0, 2) == pytest.approx(poisson_tail(4.0, 2))
    assert curve.at_least(4.0, 0) == 1.0


def test_empirical_estimate_converges():
    curve = ShowCurveEstimator(min_samples=10)
    # Predicted 5, actual is 0 half the time and 10 otherwise.
    for i in range(200):
        curve.observe(5.0, 0 if i % 2 == 0 else 10)
    assert curve.at_least(5.0, 1) == pytest.approx(0.5)
    assert curve.at_least(5.0, 10) == pytest.approx(0.5)
    assert curve.at_least(5.0, 11) == pytest.approx(0.0)
    assert curve.samples(5.0) == 200


def test_curve_monotone_in_depth():
    curve = ShowCurveEstimator(min_samples=5)
    for actual in (0, 2, 5, 9, 1, 7, 3):
        curve.observe(4.0, actual)
    values = curve.curve(4.0, 12)
    assert all(a >= b for a, b in zip(values, values[1:]))
    assert all(0.0 <= v <= 1.0 for v in values)


def test_blending_ramps_from_prior_to_empirical():
    curve = ShowCurveEstimator(min_samples=100)
    for _ in range(50):
        curve.observe(5.0, 0)   # empirical says: never shows
    blended = curve.at_least(5.0, 1)
    prior = poisson_tail(5.0, 1)
    assert 0.0 < blended < prior


def test_deep_actuals_clamped_to_max_depth():
    curve = ShowCurveEstimator(min_samples=1)
    curve.observe(70.0, MAX_DEPTH + 50)
    assert curve.at_least(70.0, MAX_DEPTH) == pytest.approx(1.0)


def test_expected_shows_sums_tail():
    curve = ShowCurveEstimator(min_samples=1)
    for _ in range(20):
        curve.observe(3.0, 2)
    assert curve.expected_shows(3.0, 4) == pytest.approx(2.0)


def test_windowed_estimator_accumulates_rolling_sums():
    windowed = WindowedShowCurveEstimator(max_window=3, min_samples=1)
    # One client, constant prediction 2, actuals 1 each epoch.
    for _ in range(50):
        windowed.observe("u", 2.0, 1)
    # 1-epoch window: actual 1; 3-epoch window: actual 3.
    assert windowed.at_least(2.0, 1, window=1) == pytest.approx(1.0)
    assert windowed.at_least(2.0, 2, window=1) == pytest.approx(0.0)
    assert windowed.at_least(2.0, 3, window=3) == pytest.approx(1.0)
    assert windowed.at_least(2.0, 4, window=3) == pytest.approx(0.0)


def test_windowed_estimator_separates_clients():
    windowed = WindowedShowCurveEstimator(max_window=2, min_samples=1)
    for _ in range(30):
        windowed.observe("busy", 5.0, 10)
        windowed.observe("idle", 5.0, 0)
    # The pooled 2-epoch curve mixes both: P(actual2 >= 1) ~= 0.5.
    assert windowed.at_least(5.0, 1, window=2) == pytest.approx(0.5, abs=0.1)


def test_windowed_estimator_validation():
    with pytest.raises(ValueError):
        WindowedShowCurveEstimator(max_window=0)
    windowed = WindowedShowCurveEstimator(max_window=2)
    with pytest.raises(ValueError):
        windowed.at_least(1.0, 1, window=3)
    with pytest.raises(ValueError):
        windowed.observe("u", 1.0, -1)


def test_dispatch_curve_views():
    windowed = WindowedShowCurveEstimator(max_window=4, min_samples=1)
    for _ in range(40):
        windowed.observe("u", 3.0, 1)
    curve = DispatchCurve(windowed, sla_window=4)
    assert curve.dup_window == 2
    assert curve.sla(3.0, 4) == pytest.approx(1.0)    # 4 shows in 4 epochs
    assert curve.epoch(3.0, 2) == pytest.approx(1.0)  # 2 shows in 2 epochs
    assert curve.epoch(3.0, 3) == pytest.approx(0.0)
    assert curve.at_least(3.0, 4) == curve.sla(3.0, 4)


def test_dispatch_curve_dup_window_capped():
    windowed = WindowedShowCurveEstimator(max_window=1)
    curve = DispatchCurve(windowed, sla_window=1)
    assert curve.dup_window == 1
    with pytest.raises(ValueError):
        DispatchCurve(windowed, sla_window=2)


def test_scaled_curve_multiplies_prediction():
    base = ShowCurveEstimator(min_samples=1)
    for _ in range(20):
        base.observe(8.0, 4)
    scaled = ScaledShowCurve(base, window_ratio=4.0)
    assert scaled.at_least(2.0, 1) == base.at_least(8.0, 1)
    with pytest.raises(ValueError):
        ScaledShowCurve(base, window_ratio=0.0)
