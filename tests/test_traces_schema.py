"""Unit tests for the trace data model."""

import pytest

from repro.traces.schema import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    AdSlot,
    Session,
    Trace,
    UserTrace,
)


def test_session_derived_fields():
    s = Session("u1", "app", start=SECONDS_PER_DAY + 2 * SECONDS_PER_HOUR,
                duration=90.0)
    assert s.end == pytest.approx(s.start + 90.0)
    assert s.day == 1
    assert s.hour_of_day == pytest.approx(2.0)


def test_session_validation():
    with pytest.raises(ValueError):
        Session("u", "a", start=-1.0, duration=10.0)
    with pytest.raises(ValueError):
        Session("u", "a", start=0.0, duration=-1.0)


def test_slot_times():
    s = Session("u", "a", start=100.0, duration=95.0)
    assert s.slot_times(30.0) == [100.0, 130.0, 160.0, 190.0]
    with pytest.raises(ValueError):
        s.slot_times(0.0)


def test_app_request_times():
    s = Session("u", "a", start=0.0, duration=100.0)
    assert s.app_request_times(None) == []
    assert s.app_request_times(40.0) == [0.0, 40.0, 80.0]
    with pytest.raises(ValueError):
        s.app_request_times(-5.0)


def test_adslot_indices():
    slot = AdSlot("u", "a", time=25 * SECONDS_PER_HOUR)
    assert slot.day == 1
    assert slot.hour_index == 25


def test_usertrace_rejects_foreign_sessions():
    trace = UserTrace("u1", "wp")
    with pytest.raises(ValueError):
        trace.add(Session("u2", "a", 0.0, 1.0))


def test_usertrace_slots_sorted():
    user = UserTrace("u", "wp")
    user.add(Session("u", "a", start=500.0, duration=35.0))
    user.add(Session("u", "a", start=0.0, duration=35.0))
    slots = user.slots({"a": 30.0})
    times = [s.time for s in slots]
    assert times == sorted(times)
    assert len(slots) == 4


def test_trace_accumulates_users_and_sessions():
    trace = Trace(n_days=2)
    trace.add_session(Session("u1", "a", 0.0, 10.0), platform="wp")
    trace.add_session(Session("u2", "a", 5.0, 10.0), platform="iphone")
    trace.add_session(Session("u1", "a", 50.0, 10.0))
    assert trace.n_users == 2
    assert trace.n_sessions() == 3
    assert trace.user("u2").platform == "iphone"
    assert trace.horizon == 2 * SECONDS_PER_DAY
    assert [s.user_id for s in trace.all_sessions()] == ["u1", "u1", "u2"]


def test_split_days_partitions_sessions():
    trace = Trace(n_days=4)
    trace.add_session(Session("u1", "a", 0.5 * SECONDS_PER_DAY, 10.0))
    trace.add_session(Session("u1", "a", 2.5 * SECONDS_PER_DAY, 10.0))
    trace.add_session(Session("u2", "a", 1.5 * SECONDS_PER_DAY, 10.0))
    train, test = trace.split_days(2)
    assert train.n_days == 2 and test.n_days == 4
    assert train.n_sessions() == 2
    assert test.n_sessions() == 1
    # Both halves keep the full user population.
    assert set(train.users) == set(test.users) == {"u1", "u2"}
    # Test timestamps remain absolute.
    assert next(iter(test.user("u1").sessions)).day == 2


def test_split_days_bounds():
    trace = Trace(n_days=3)
    with pytest.raises(ValueError):
        trace.split_days(0)
    with pytest.raises(ValueError):
        trace.split_days(3)
