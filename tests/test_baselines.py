"""Unit tests for the real-time baseline engine."""

import pytest

from repro.baselines.realtime import run_realtime
from repro.exchange.auction import AuctionConfig
from repro.exchange.campaign import Campaign
from repro.exchange.marketplace import Exchange
from repro.radio.profiles import THREE_G, get_profile
from repro.sim.rng import RngRegistry


def _exchange(n=30):
    campaigns = [Campaign(f"c{i}", "a", bid=2.0, budget=1e9)
                 for i in range(n)]
    return Exchange(campaigns, AuctionConfig(bid_jitter_sigma=0.1),
                    RngRegistry(8).fresh("rt"))


def test_realtime_fills_every_slot_with_demand(tiny_world, tiny_config):
    start = tiny_config.train_days * 86400.0
    outcome = run_realtime(tiny_world.timelines, tiny_world.apps, THREE_G,
                           _exchange(), start, tiny_world.trace.horizon)
    assert outcome.unfilled_slots == 0
    assert outcome.impressions == outcome.total_slots
    assert outcome.billed_revenue > 0
    assert outcome.energy.ad_joules > 0
    assert outcome.energy.n_users == tiny_world.trace.n_users


def test_realtime_rejects_empty_window(tiny_world):
    with pytest.raises(ValueError):
        run_realtime(tiny_world.timelines, tiny_world.apps, THREE_G,
                     _exchange(), 100.0, 100.0)


def test_realtime_energy_scales_with_window(tiny_world, tiny_config):
    horizon = tiny_world.trace.horizon
    one_day = run_realtime(tiny_world.timelines, tiny_world.apps, THREE_G,
                           _exchange(), horizon - 86400.0, horizon)
    two_days = run_realtime(tiny_world.timelines, tiny_world.apps, THREE_G,
                            _exchange(), horizon - 2 * 86400.0, horizon)
    assert two_days.energy.ad_joules > one_day.energy.ad_joules
    assert two_days.impressions > one_day.impressions


def test_realtime_wifi_is_cheaper_than_3g(tiny_world, tiny_config):
    start = tiny_config.train_days * 86400.0
    on_3g = run_realtime(tiny_world.timelines, tiny_world.apps,
                         get_profile("3g"), _exchange(), start,
                         tiny_world.trace.horizon)
    on_wifi = run_realtime(tiny_world.timelines, tiny_world.apps,
                           get_profile("wifi"), _exchange(), start,
                           tiny_world.trace.horizon)
    assert on_wifi.energy.ad_joules < 0.2 * on_3g.energy.ad_joules
