"""Acceptance properties of fault injection: parallelism invariance and
reproducibility from ``(config, seed, plan)``, plus E13's headline claim
at test scale."""

import pytest

from repro.experiments.e13_faults import plan_for, run_e13
from repro.faults.plan import FaultPlan
from repro.runner import Runner

FAULTY_PLAN = FaultPlan(loss_prob=0.2, outage_rate_per_day=4.0,
                        outage_duration_s=900.0,
                        latency_mean_s=15.0, churn_prob=0.1)


@pytest.fixture(scope="module")
def faulty_config(tiny_config):
    # One scheduled server blackout inside the test window.
    start = tiny_config.train_days * 86400.0 + 2 * 3600.0
    plan = FAULTY_PLAN.variant(server_outages=((start, start + 3600.0),))
    return tiny_config.variant(faults=plan,
                               presumed_dark_after_s=2 * 3600.0)


def test_fault_runs_are_parallelism_invariant(faulty_config, tiny_world):
    """jobs=1 vs jobs=4 on the same shard layout must be bit-identical
    even with every fault mode firing — the tentpole acceptance."""
    serial = Runner(faulty_config, parallelism=1, shards=4,
                    world=tiny_world).run("headline")
    parallel = Runner(faulty_config, parallelism=4, shards=4,
                      world=tiny_world).run("headline")
    assert serial.prefetch == parallel.prefetch
    assert serial.realtime == parallel.realtime
    assert serial.comparison == parallel.comparison


def test_fault_runs_reproduce_from_config_seed_plan(faulty_config,
                                                    tiny_world):
    a = Runner(faulty_config, shards=2, world=tiny_world).run("headline")
    b = Runner(faulty_config, shards=2, world=tiny_world).run("headline")
    assert a.prefetch == b.prefetch
    assert a.realtime == b.realtime


def test_fault_plan_changes_results(tiny_config, faulty_config, tiny_world):
    clean = Runner(tiny_config, world=tiny_world).run("prefetch").prefetch
    faulty = Runner(faulty_config, world=tiny_world).run("prefetch").prefetch
    assert faulty != clean
    # Faults can only destroy value: billed revenue must not increase.
    assert faulty.revenue.total_billed < clean.revenue.total_billed


def test_e13_rescue_beats_realtime_under_faults(tiny_config):
    """The committed-table acceptance at test scale: the full system's
    SLA violation rate stays strictly below real-time's ad-miss rate at
    every non-zero fault intensity."""
    table = run_e13(tiny_config, intensities=(0.0, 0.2))
    assert len(table.rows) == 6
    realtime = table.row_for(0.2, "realtime")
    rescue = table.row_for(0.2, "prefetch+rescue")
    assert realtime.failure_rate > 0.0
    assert rescue.failure_rate < realtime.failure_rate
    # Zero intensity anchors each system's own baseline.
    assert table.row_for(0.0, "realtime").revenue_loss == 0.0
    assert table.row_for(0.0, "prefetch+rescue").energy_overhead == 0.0
    rendered = table.render()
    assert "prefetch+rescue" in rendered and "intensity" in rendered
    with pytest.raises(KeyError):
        table.row_for(0.99, "realtime")


def test_plan_for_scales_with_intensity(tiny_config):
    assert plan_for(0.0, tiny_config).is_empty
    low, high = plan_for(0.05, tiny_config), plan_for(0.3, tiny_config)
    assert low.loss_prob < high.loss_prob
    assert low.churn_prob < high.churn_prob
    assert low.server_outages and high.server_outages
    start = tiny_config.train_days * 86400.0
    for plan in (low, high):
        (outage_start, outage_end), = plan.server_outages
        assert start <= outage_start < outage_end <= \
            tiny_config.n_days * 86400.0
