"""Unit tests for the ad server's protocol logic."""

import numpy as np
import pytest

from repro.core.overbooking import StaggeredPolicy
from repro.exchange.auction import AuctionConfig
from repro.exchange.campaign import Campaign
from repro.exchange.marketplace import Exchange
from repro.prediction.models import TimeOfDayMeanPredictor
from repro.server.adserver import AdServer, ServerConfig
from repro.sim.rng import RngRegistry

HOUR = 3600.0


def _server(users=("u1", "u2"), **config_overrides) -> AdServer:
    config = ServerConfig(**{"epoch_s": HOUR, "deadline_s": 4 * HOUR,
                             **config_overrides})
    campaigns = [Campaign(f"c{i}", "a", bid=2.0 + i * 0.01, budget=1e9)
                 for i in range(20)]
    exchange = Exchange(campaigns, AuctionConfig(bid_jitter_sigma=1e-9),
                        RngRegistry(4).fresh("x"))
    predictors = {uid: TimeOfDayMeanPredictor(HOUR) for uid in users}
    return AdServer(config, exchange, StaggeredPolicy(epsilon=0.05),
                    predictors, RngRegistry(4).fresh("d"))


def _warm(server: AdServer, counts_per_epoch: int, epochs: int = 72) -> None:
    uids = list(server._clients)
    for uid in uids:
        server.warm_up({uid: np.full(epochs, counts_per_epoch)},
                       start_epoch=0)


def test_config_validation():
    with pytest.raises(ValueError):
        ServerConfig(epoch_s=0.0)
    with pytest.raises(ValueError):
        ServerConfig(epoch_s=3600.0, deadline_s=1800.0)
    with pytest.raises(ValueError):
        ServerConfig(epsilon=0.0)
    with pytest.raises(ValueError):
        ServerConfig(sell_factor=0.0)
    with pytest.raises(ValueError):
        ServerConfig(fallback="maybe")
    assert ServerConfig(epoch_s=HOUR, deadline_s=4 * HOUR).sla_window == 4
    assert ServerConfig().rescue_horizon == pytest.approx(
        ServerConfig().deadline_s - ServerConfig().epoch_s)


def test_plan_epoch_sells_scaled_prediction():
    server = _server(sell_factor=0.5)
    _warm(server, 10)
    now = 72 * HOUR
    stats = server.plan_epoch(72, now)
    assert stats.predicted_total == pytest.approx(20.0)
    assert stats.sold == 10
    assert stats.assignments >= stats.sold - stats.unplaced
    assert len(server.all_sales) == 10


def test_sync_delivers_planned_queue_once():
    server = _server(sell_factor=1.0)
    _warm(server, 5)
    now = 72 * HOUR
    server.plan_epoch(72, now)
    response = server.sync("u1", now + 60.0, reports=[])
    assert response.nbytes > server.config.control_bytes
    again = server.sync("u1", now + 120.0, reports=[])
    assert again.assignments == []
    assert again.nbytes == server.config.control_bytes


def test_reports_propagate_invalidations_to_other_replicas():
    server = _server(sell_factor=1.0)
    # Bursty history (active every other day): P(show) < 1, so the
    # planner must replicate to approach epsilon and u1/u2 end up
    # sharing sales.
    counts = np.repeat([1, 0, 1, 0], 24) * 12
    for uid in ("u1", "u2"):
        server.warm_up({uid: counts}, start_epoch=0)
    now = 96 * HOUR
    server.plan_epoch(96, now)
    r1 = server.sync("u1", now + 10.0, reports=[])
    r2 = server.sync("u2", now + 20.0, reports=[])
    shared = ({a.sale_id for a in r1.assignments}
              & {a.sale_id for a in r2.assignments})
    assert shared, "bursty world must force replication"
    sale_id = next(iter(shared))
    # u1 displays the shared sale and reports it.
    server.record_display(sale_id, "u1", now + 30.0)
    server.report("u1", [(sale_id, now + 30.0)])
    # u2's next contact must carry the invalidation.
    invalidated = server.report("u2", [])
    assert sale_id in invalidated


def test_expired_pending_is_pruned_at_delivery():
    server = _server(sell_factor=1.0, deadline_s=4 * HOUR)
    _warm(server, 5)
    now = 72 * HOUR
    server.plan_epoch(72, now)
    # The client only shows up after the deadline.
    response = server.sync("u1", now + 5 * HOUR, reports=[])
    assert response.assignments == []


def test_rescue_only_near_deadline_and_never_same_client():
    server = _server(sell_factor=1.0, rescue_batch=2,
                     rescue_horizon_s=1 * HOUR)
    _warm(server, 5)
    now = 72 * HOUR
    server.plan_epoch(72, now)
    # Immediately after planning, deadlines are 4 h out: nothing to rescue.
    assert server.rescue("u2", now + 100.0) == []
    # In the desperate window just before the deadline, rescue kicks in
    # regardless of owner activity.
    late = now + 3.9 * HOUR
    rescued = server.rescue("u2", late)
    assert 0 < len(rescued) <= 2
    for sale in rescued:
        assert sale.deadline > late
    # The same client never receives the same sale twice via rescue.
    more = server.rescue("u2", late + 10.0)
    assert not ({s.sale_id for s in rescued} & {s.sale_id for s in more})


def test_rescue_skips_sales_with_recently_active_owners():
    server = _server(sell_factor=1.0, rescue_batch=8,
                     rescue_horizon_s=4 * HOUR)
    _warm(server, 5)
    now = 72 * HOUR
    server.plan_epoch(72, now)
    r1 = server.sync("u1", now + 10.0, reports=[])   # u1 is active now
    owned_by_u1 = {a.sale_id for a in r1.assignments}
    rescued = server.rescue("u2", now + 20.0)
    # Sales delivered to the just-active u1 are left alone (deadline far).
    assert not ({s.sale_id for s in rescued} & owned_by_u1)


def test_rescue_revokes_previous_owner_copy():
    server = _server(sell_factor=1.0, rescue_batch=4,
                     rescue_horizon_s=4 * HOUR)
    _warm(server, 5)
    now = 72 * HOUR
    server.plan_epoch(72, now)
    r1 = server.sync("u1", now + 10.0, reports=[])
    owned = {a.sale_id for a in r1.assignments}
    assert owned
    # Much later (u1 long idle), u2 rescues some of u1's sales.
    late = now + 3.9 * HOUR
    rescued = server.rescue("u2", late)
    taken = {s.sale_id for s in rescued} & owned
    assert taken
    invalidated = server.report("u1", [])
    assert taken <= invalidated


def test_realtime_fill_modes():
    server = _server(fallback="realtime")
    sale = server.realtime_fill(0.0, category="game", platform="wp")
    assert sale is not None
    assert server.fallback_impressions == 1
    assert server.fallback_billed == pytest.approx(sale.price)

    house = _server(fallback="house")
    assert house.realtime_fill(0.0, "game", "wp") is None
    assert house.unfilled_slots == 1


def test_finalize_settles_all_sales():
    server = _server(sell_factor=1.0)
    _warm(server, 3)
    now = 72 * HOUR
    server.plan_epoch(72, now)
    response = server.sync("u1", now + 10.0, reports=[])
    shown = response.assignments[0]
    server.record_display(shown.sale_id, "u1", now + 20.0)
    outcomes, sla, revenue = server.finalize()
    assert sla.n_sales == len(server.all_sales)
    assert sla.n_on_time == 1
    assert revenue.billed_prefetch == pytest.approx(shown.sale.price)
    assert revenue.paid_impressions == 1


# ----------------------------------------------------------------------
# Resilience: presumed-dark rescue, degraded epochs, heap hygiene
# ----------------------------------------------------------------------


def test_presumed_dark_reclaims_and_redispatches_to_live_host():
    server = _server(sell_factor=1.0, presumed_dark_after_s=HOUR,
                     deadline_s=8 * HOUR)
    _warm(server, 5)
    now = 72 * HOUR
    server.plan_epoch(72, now)
    r1 = server.sync("u1", now + 10.0, reports=[])
    owned = {a.sale_id for a in r1.assignments}
    assert owned, "u1 must receive inventory to lose"
    # u2 stays in contact; u1 goes silent for > presumed_dark_after_s.
    server.sync("u2", now + 1.9 * HOUR, reports=[])
    server.plan_epoch(74, now + 2 * HOUR)
    assert server.presumed_dark == 1
    assert server.redispatched > 0
    # u1's replicas were revoked: its next contact drops the copies.
    invalidated = server.report("u1", [])
    assert owned <= invalidated
    # The orphans now live on u2's pending queue.
    r2 = server.sync("u2", now + 2 * HOUR + 10.0, reports=[])
    redelivered = {a.sale_id for a in r2.assignments}
    assert owned & redelivered


def test_presumed_dark_all_candidate_hosts_dark():
    """When every contacted client is presumed dark, orphans stay in the
    at-risk heap (no crash, no dispatch to a dark host) and wait for
    demand-driven rescue at the next live contact."""
    server = _server(sell_factor=1.0, presumed_dark_after_s=HOUR,
                     deadline_s=8 * HOUR)
    _warm(server, 5)
    now = 72 * HOUR
    server.plan_epoch(72, now)
    delivered = set()
    for uid in ("u1", "u2"):
        response = server.sync(uid, now + 10.0, reports=[])
        delivered |= {a.sale_id for a in response.assignments}
    assert delivered
    # Everyone silent for two hours: all candidate hosts are dark.
    server.plan_epoch(74, now + 2 * HOUR)
    # (Only hosts that held replicas count; a dark host with an empty
    # queue has nothing to reclaim.)
    assert server.presumed_dark >= 1
    assert server.redispatched == 0
    heap_ids = {sid for _, sid, _ in server._at_risk}
    assert delivered <= heap_ids
    # A dark host coming back rescues its own orphans (demand-driven).
    rescued = server.rescue("u1", now + 7.5 * HOUR)
    assert rescued


def test_presumed_dark_ignores_never_contacted_clients():
    """Clients the server has never heard from are not presumed dark —
    otherwise the whole population is reclaimed at the first epoch."""
    server = _server(sell_factor=1.0, presumed_dark_after_s=HOUR)
    _warm(server, 5)
    now = 72 * HOUR
    server.plan_epoch(72, now)
    server.plan_epoch(74, now + 2 * HOUR)   # nobody ever synced
    assert server.presumed_dark == 0
    assert server.redispatched == 0


def test_rescue_drops_settled_and_hopeless_sales_from_heap():
    """The 'settled or hopeless' pop path: shown sales and sales past
    their deadline leave the at-risk heap for good."""
    server = _server(sell_factor=1.0, rescue_batch=8,
                     rescue_horizon_s=4 * HOUR)
    _warm(server, 5)
    now = 72 * HOUR
    server.plan_epoch(72, now)
    heap_before = len(server._at_risk)
    assert heap_before > 0
    # Mark one sale shown via a report; push every other past deadline.
    response = server.sync("u1", now + 10.0, reports=[])
    shown = response.assignments[0].sale_id
    server.report("u1", [(shown, now + 20.0)])
    after_deadline = now + 5 * HOUR
    assert server.rescue("u2", after_deadline) == []
    assert server._at_risk == []            # heap fully drained
    # And nothing resurrects them later.
    assert server.rescue("u1", after_deadline + 10.0) == []


def test_degraded_epoch_records_but_sells_nothing():
    server = _server(sell_factor=1.0)
    _warm(server, 5)
    now = 72 * HOUR
    server.degraded_epoch(72, now)
    server.degraded_epoch(73, now + HOUR)
    assert server.degraded_epochs == 2
    assert server.all_sales == []
    assert server.plan_stats == []
    # Planning resumes normally once the blackout lifts.
    stats = server.plan_epoch(74, now + 2 * HOUR)
    assert stats.sold > 0


def test_presumed_dark_config_validation():
    with pytest.raises(ValueError):
        ServerConfig(presumed_dark_after_s=0.0)
    with pytest.raises(ValueError):
        ServerConfig(presumed_dark_after_s=-1.0)
    assert ServerConfig(presumed_dark_after_s=HOUR).presumed_dark_after_s \
        == HOUR
