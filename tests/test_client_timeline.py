"""Unit tests for timeline compilation."""

import numpy as np
import pytest

from repro.client.timeline import (
    KIND_APP,
    KIND_APP_STREAM,
    KIND_SLOT,
    KIND_SLOT_START,
    compile_timeline,
    compile_trace,
)
from repro.radio.profiles import THREE_G
from repro.traces.schema import Session, UserTrace
from repro.workloads.appstore import get_app


def _user_with(sessions) -> UserTrace:
    user = UserTrace("u1", "wp")
    for s in sessions:
        user.add(s)
    user.sort()
    return user


def test_offline_game_emits_only_slots():
    app = get_app("puzzle_blocks")    # offline, 30 s refresh
    user = _user_with([Session("u1", app.app_id, 100.0, 65.0)])
    timeline = compile_timeline(user, [app], THREE_G)
    assert timeline.slot_count() == 3
    assert timeline.kinds.tolist() == [KIND_SLOT_START, KIND_SLOT, KIND_SLOT]
    assert timeline.times.tolist() == [100.0, 130.0, 160.0]
    assert all(p == 0.0 for p in timeline.payload)   # app index


def test_chatty_app_emits_discrete_requests():
    app = get_app("daily_weather")    # 60 s interval > 3G high tail (5 s)
    user = _user_with([Session("u1", app.app_id, 0.0, 120.0)])
    timeline = compile_timeline(user, [app], THREE_G)
    app_events = timeline.kinds == KIND_APP
    assert app_events.sum() == 3      # t = 0, 60, 120
    assert (timeline.payload[app_events] == app.app_request_bytes).all()


def test_streaming_app_collapses_to_span():
    app = get_app("internet_radio")   # 4 s interval < 5 s high tail
    user = _user_with([Session("u1", app.app_id, 50.0, 300.0)])
    timeline = compile_timeline(user, [app], THREE_G)
    streams = timeline.kinds == KIND_APP_STREAM
    assert streams.sum() == 1
    assert timeline.payload[streams][0] == pytest.approx(300.0)


def test_events_sorted_across_sessions():
    app = get_app("puzzle_blocks")
    user = _user_with([Session("u1", app.app_id, 500.0, 10.0),
                       Session("u1", app.app_id, 0.0, 10.0)])
    timeline = compile_timeline(user, [app], THREE_G)
    assert (np.diff(timeline.times) >= 0).all()
    # Each session's first slot is a session-start event.
    starts = timeline.kinds == KIND_SLOT_START
    assert starts.sum() == 2


def test_window_slicing_half_open():
    app = get_app("puzzle_blocks")
    user = _user_with([Session("u1", app.app_id, 0.0, 95.0)])
    timeline = compile_timeline(user, [app], THREE_G)
    times, kinds, _ = timeline.window(30.0, 90.0)
    assert times.tolist() == [30.0, 60.0]
    assert timeline.first_slot_in(30.0, 90.0) == 30.0
    assert timeline.first_slot_in(1000.0, 2000.0) is None


def test_compile_trace_covers_all_users(tiny_world):
    assert set(tiny_world.timelines) == set(tiny_world.trace.users)
    total_slots = sum(t.slot_count() for t in tiny_world.timelines.values())
    refresh = tiny_world.refresh_of
    expected = sum(len(u.slots(refresh))
                   for u in tiny_world.trace.users.values())
    assert total_slots == expected
