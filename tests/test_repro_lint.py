"""Self-application: repro-lint must hold over this repository.

These tests are the enforcement half of the determinism contract: the
shipped tree (``src/`` and ``tests/``) must produce zero non-baselined
findings, the committed stream manifest must match the code, and an
injected determinism hazard must be caught (the acceptance scenario:
``np.random.default_rng()`` smuggled into ``repro/sim/processes.py``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import analyze_source, run_analysis
from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.cli import main as lint_main
from repro.analysis.manifest import build_manifest, check_manifest

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "analysis" / "repro-lint-baseline.json"
MANIFEST = REPO_ROOT / "analysis" / "streams.json"


@pytest.fixture(scope="module")
def repo_report():
    """One analysis of the whole tree, shared across tests (cwd-safe)."""
    import os
    cwd = os.getcwd()
    os.chdir(REPO_ROOT)
    try:
        return run_analysis(["src", "tests"])
    finally:
        os.chdir(cwd)


class TestSelfApplication:
    def test_tree_is_clean_of_non_baselined_findings(self, repo_report):
        baseline = Baseline.load(BASELINE)
        new, _baselined, _stale = baseline.split(repo_report.findings)
        assert new == [], "\n" + "\n".join(f.render() for f in new)

    def test_no_parse_errors(self, repo_report):
        assert repo_report.parse_errors == []

    def test_every_shipped_file_analyzed(self, repo_report):
        # The walk must actually cover the tree (guards against a
        # discovery regression silently linting nothing).
        assert repo_report.files_analyzed > 100

    def test_committed_baseline_is_empty(self):
        data = json.loads(BASELINE.read_text())
        assert data["findings"] == [], (
            "the baseline grandfathers findings; this repo's policy is "
            "fix-or-suppress-with-justification")

    def test_stream_manifest_matches_code(self, repo_report):
        assert check_manifest(repo_report.stream_sites, MANIFEST) == []

    def test_manifest_covers_known_streams(self, repo_report):
        names = {entry["name"] for entry
                 in build_manifest(repo_report.stream_sites)["streams"]}
        # Anchor streams the experiments depend on; renaming any of
        # these re-seeds a component and must show up here.
        for expected in ("population", "trace", "radio-assignment",
                         "campaigns{rng_tag}", "dispatch{rng_tag}"):
            assert expected in names, names

    def test_cli_exit_code_clean(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert lint_main(["src", "tests", "--check-manifest"]) == 0

    def test_cli_json_format(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert lint_main(["src/repro/sim", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["findings"] == []


class TestInjectionScenario:
    """The acceptance drill: a smuggled RNG construction must fail."""

    def test_default_rng_injected_into_processes_fails(self):
        source = (REPO_ROOT / "src/repro/sim/processes.py").read_text()
        injected = source + (
            "\n\ndef _smuggled():\n"
            "    return np.random.default_rng().random()\n")
        findings = analyze_source(injected, "src/repro/sim/processes.py")
        assert any(f.rule == "RPR002" for f in findings)
        # And the finding is new (not absorbed by the baseline).
        baseline = Baseline.load(BASELINE)
        new, _, _ = baseline.split(findings)
        assert any(f.rule == "RPR002" for f in new)

    def test_wall_clock_injected_into_engine_fails(self):
        source = (REPO_ROOT / "src/repro/sim/engine.py").read_text()
        injected = source.replace(
            "from __future__ import annotations",
            "from __future__ import annotations\nimport time as _time")
        injected += "\n\ndef _leaky_now():\n    return _time.time()\n"
        findings = analyze_source(injected, "src/repro/sim/engine.py")
        assert any(f.rule == "RPR001" for f in findings)

    def test_stream_rename_breaks_manifest(self, repo_report):
        sites = [type(s)(template=("renamed" if s.template == "trace"
                                   else s.template),
                         path=s.path, line=s.line)
                 for s in repo_report.stream_sites]
        problems = check_manifest(sites, MANIFEST)
        assert any("renamed" in p for p in problems)
        assert any("trace" in p for p in problems)


class TestBaselineMechanics:
    def test_round_trip(self, tmp_path):
        findings = analyze_source(
            "import time\n\n\ndef f():\n    return time.time()\n",
            "src/repro/sim/x.py")
        assert findings
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        loaded = Baseline.load(path)
        new, baselined, stale = loaded.split(findings)
        assert new == [] and len(baselined) == len(findings)
        assert stale == []

    def test_stale_entries_surface(self, tmp_path):
        findings = analyze_source(
            "import time\n\n\ndef f():\n    return time.time()\n",
            "src/repro/sim/x.py")
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        loaded = Baseline.load(path)
        _new, _baselined, stale = loaded.split([])
        assert len(stale) == len(findings)

    def test_fingerprint_survives_line_drift(self):
        before = analyze_source(
            "import time\n\n\ndef f():\n    return time.time()\n",
            "src/repro/sim/x.py")
        after = analyze_source(
            "import time\n\n# a comment pushing things down\n\n"
            "def f():\n    return time.time()\n",
            "src/repro/sim/x.py")
        assert before[0].line != after[0].line
        assert before[0].fingerprint == after[0].fingerprint


class TestCliGrowth:
    """The PR-2 surface: --paths subsets, SARIF, baseline prune."""

    def test_paths_file_subset(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        code = lint_main(["--paths",
                          "src/repro/sim/rng.py,src/repro/sim/engine.py",
                          "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_analyzed"] == 2

    def test_paths_missing_file_is_usage_error(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert lint_main(["--paths", "src/repro/nope.py"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_sarif_output_validates(self, monkeypatch, capsys):
        from repro.analysis.sarif import validate_sarif
        monkeypatch.chdir(REPO_ROOT)
        assert lint_main(["src/repro/sim", "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert validate_sarif(doc) == []

    def test_cache_dir_cli_round_trip(self, monkeypatch, tmp_path, capsys):
        monkeypatch.chdir(REPO_ROOT)
        cache = tmp_path / "cache"
        assert lint_main(["src/repro/faults", "--cache-dir", str(cache),
                          "--format", "json"]) == 0
        assert list(cache.glob("*.json")), "cache dir stayed empty"
        assert lint_main(["src/repro/faults", "--cache-dir", str(cache),
                          "--format", "json"]) == 0
        capsys.readouterr()

    def test_baseline_prune_drops_stale_entries(self, monkeypatch,
                                                tmp_path, capsys):
        monkeypatch.chdir(REPO_ROOT)
        stale = Finding(rule="RPR001", message="long-gone hazard",
                        path="src/repro/sim/engine.py", line=1, col=0,
                        scope="gone")
        path = tmp_path / "baseline.json"
        Baseline.from_findings([stale]).save(path)
        code = lint_main(["baseline", "prune", "src/repro/sim",
                          "--baseline", str(path)])
        assert code == 0
        assert "pruned 1 stale" in capsys.readouterr().out
        assert Baseline.load(path).entries == {}

    def test_baseline_prune_check_fails_without_writing(self, monkeypatch,
                                                        tmp_path, capsys):
        monkeypatch.chdir(REPO_ROOT)
        stale = Finding(rule="RPR001", message="long-gone hazard",
                        path="src/repro/sim/engine.py", line=1, col=0,
                        scope="gone")
        path = tmp_path / "baseline.json"
        Baseline.from_findings([stale]).save(path)
        code = lint_main(["baseline", "prune", "src/repro/sim",
                          "--baseline", str(path), "--check"])
        assert code == 1
        assert "stale" in capsys.readouterr().out
        assert len(Baseline.load(path).entries) == 1  # untouched

    def test_baseline_prune_clean_is_noop(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        code = lint_main(["baseline", "prune", "src/repro/faults",
                          "--baseline", str(BASELINE), "--check"])
        assert code == 0
        assert "no stale entries" in capsys.readouterr().out
