"""Unit tests for outcome composition and comparison."""

import pytest

from repro.core.revenue import RevenueReport
from repro.core.sla import SlaReport
from repro.metrics.energy import EnergyReport
from repro.metrics.outcomes import (
    PrefetchOutcome,
    RealtimeOutcome,
    compare,
)


def _energy(ad=100.0, wakeups=10):
    return EnergyReport(ad_joules=ad, app_joules=50.0, wakeups=wakeups,
                        ad_bytes=1000, app_bytes=500, n_users=5, days=2.0)


def _prefetch(ad=40.0, wakeups=4, billed=90.0, violated=1):
    sla = SlaReport(n_sales=100, n_on_time=100 - violated,
                    n_violated=violated, n_duplicates=2,
                    mean_latency_s=600.0)
    revenue = RevenueReport(
        billed_prefetch=billed, billed_fallback=5.0, voided=2.0,
        duplicate_impressions=2, duplicate_opportunity_cost=4.0,
        paid_impressions=99, fallback_impressions=3, unfilled_slots=0)
    return PrefetchOutcome(
        energy=_energy(ad, wakeups), sla=sla, revenue=revenue,
        cached_displays=95, rescued_displays=6, fallback_displays=3,
        house_displays=1, wasted_downloads=7, mean_replication=1.2,
        syncs=40)


def _realtime(ad=100.0, wakeups=10, billed=100.0):
    return RealtimeOutcome(energy=_energy(ad, wakeups),
                           billed_revenue=billed, impressions=105,
                           unfilled_slots=0)


def test_compare_headline_metrics():
    comparison = compare(_prefetch(), _realtime())
    assert comparison.energy_savings == pytest.approx(0.6)
    assert comparison.revenue_loss == pytest.approx(1 - 95.0 / 100.0)
    assert comparison.sla_violation_rate == pytest.approx(0.01)
    assert comparison.wakeup_reduction == pytest.approx(0.6)


def test_rates_and_totals():
    outcome = _prefetch()
    assert outcome.total_slots == 95 + 6 + 3 + 1
    assert outcome.cache_hit_rate == pytest.approx(95 / 105)
    assert outcome.prefetch_served_rate == pytest.approx(101 / 105)
    realtime = _realtime()
    assert realtime.total_slots == 105


def test_wakeup_reduction_guards_zero_baseline():
    comparison = compare(_prefetch(), _realtime(wakeups=0))
    assert comparison.wakeup_reduction == 0.0


def test_revenue_report_views():
    revenue = _prefetch().revenue
    assert revenue.total_billed == pytest.approx(95.0)
    assert revenue.potential == pytest.approx(90 + 2 + 4 + 5)
    assert revenue.internal_loss_rate == pytest.approx(6 / 101)
