"""Unit tests for the RRC state machine and marginal attribution."""

import pytest

from repro.radio.profiles import THREE_G, WIFI
from repro.radio.statemachine import (
    STATE_ACTIVE,
    STATE_HIGH_TAIL,
    STATE_IDLE,
    STATE_LOW_TAIL,
    STATE_PROMO,
    RadioStateMachine,
)

P = THREE_G


def test_cold_start_pays_full_promotion_and_tail():
    m = RadioStateMachine(P)
    rec = m.transfer(0.0, 4000, "ad")
    m.finalize()
    assert rec.caused_wakeup
    assert rec.promo_energy == pytest.approx(P.promo_energy)
    assert rec.tail_energy == pytest.approx(P.tail_energy)
    assert rec.energy == pytest.approx(P.isolated_transfer_energy(4000))
    assert m.wakeups == 1


def test_transfer_during_high_tail_skips_promotion():
    m = RadioStateMachine(P)
    first = m.transfer(0.0, 4000, "ad")
    # Second transfer 2 s after the first ends: inside the DCH tail.
    second = m.transfer(first.end_time + 2.0, 4000, "ad")
    m.finalize()
    assert second.promo_energy == 0.0
    assert not second.caused_wakeup
    # First transfer's tail truncated at 2 s of high-tail power.
    assert first.tail_energy == pytest.approx(P.high_tail_power * 2.0)
    assert m.wakeups == 1


def test_transfer_during_low_tail_pays_cheap_promotion():
    m = RadioStateMachine(P)
    first = m.transfer(0.0, 4000, "ad")
    gap = P.high_tail_time + 3.0   # inside the second (FACH) tail stage
    second = m.transfer(first.end_time + gap, 4000, "ad")
    m.finalize()
    assert second.promo_energy == pytest.approx(
        P.promo_power * P.promo_low_time)
    assert not second.caused_wakeup
    assert first.tail_energy == pytest.approx(
        P.high_tail_power * P.high_tail_time + P.low_tail_power * 3.0)


def test_transfer_after_full_tail_pays_everything_again():
    m = RadioStateMachine(P)
    first = m.transfer(0.0, 4000, "ad")
    second = m.transfer(first.end_time + P.tail_time + 10.0, 4000, "ad")
    m.finalize()
    assert second.caused_wakeup
    assert first.tail_energy == pytest.approx(P.tail_energy)
    assert second.energy == pytest.approx(P.isolated_transfer_energy(4000))
    assert m.wakeups == 2


def test_queued_transfer_starts_after_inflight_one():
    m = RadioStateMachine(P)
    first = m.transfer(0.0, 1_000_000, "app")   # ~8 s active
    second = m.transfer(first.start_time + 1.0, 4000, "ad")
    assert second.start_time == pytest.approx(first.end_time)
    assert second.promo_energy == 0.0


def test_marginal_attribution_is_additive():
    """Sum of per-tag charges equals total energy of the power timeline."""
    m = RadioStateMachine(P)
    t = 0.0
    for i in range(20):
        tag = "ad" if i % 3 == 0 else "app"
        rec = m.transfer(t, 3000, tag)
        t = rec.end_time + (i % 5) * 4.0
    m.finalize()
    by_tag = m.energy_by_tag()
    assert set(by_tag) == {"ad", "app"}
    assert sum(by_tag.values()) == pytest.approx(m.communication_energy())
    record_total = sum(rec.energy for rec in m.records)
    assert record_total == pytest.approx(m.communication_energy())


def test_piggybacked_ad_is_far_cheaper_than_isolated():
    """An ad fetched while app traffic keeps the radio hot costs ~nothing
    extra — the piggybacking effect behind the 65% measurement."""
    m = RadioStateMachine(P)
    rec_app = m.transfer(0.0, 50_000, "app")
    m.transfer(rec_app.end_time + 1.0, 4000, "ad")
    m.transfer(rec_app.end_time + 3.0, 50_000, "app")
    m.finalize()
    ad_cost = m.energy_by_tag()["ad"]
    assert ad_cost < 0.2 * P.isolated_transfer_energy(4000)


def test_non_chronological_transfers_rejected():
    m = RadioStateMachine(P)
    m.transfer(10.0, 100, "ad")
    with pytest.raises(ValueError, match="chronological"):
        m.transfer(5.0, 100, "ad")


def test_finalize_is_idempotent_and_blocks_more_transfers():
    m = RadioStateMachine(P)
    m.transfer(0.0, 100, "ad")
    m.finalize()
    m.finalize()
    with pytest.raises(RuntimeError):
        m.transfer(100.0, 100, "ad")


def test_finalize_with_horizon_truncates_trailing_tail():
    m = RadioStateMachine(P)
    rec = m.transfer(0.0, 4000, "ad")
    m.finalize(end_time=rec.end_time + 1.0)
    assert rec.tail_energy == pytest.approx(P.high_tail_power * 1.0)


def test_explicit_duration_override():
    m = RadioStateMachine(P)
    rec = m.transfer(0.0, 1000, "app", duration=300.0)
    assert rec.end_time - rec.start_time == pytest.approx(300.0)
    assert rec.active_energy == pytest.approx(P.active_power * 300.0)
    with pytest.raises(ValueError):
        m.transfer(400.0, 100, "app", duration=-1.0)


def test_keep_records_false_still_accounts_energy():
    m = RadioStateMachine(P, keep_records=False)
    m.transfer(0.0, 4000, "ad")
    m.finalize()
    assert m.records == []
    assert m.transfer_count == 1
    assert m.energy_by_tag()["ad"] == pytest.approx(
        P.isolated_transfer_energy(4000))


def test_timeline_records_all_states_in_order():
    m = RadioStateMachine(P, keep_timeline=True)
    rec = m.transfer(5.0, 4000, "ad")
    m.transfer(rec.end_time + P.tail_time + 30.0, 4000, "ad")
    m.finalize()
    states = [iv.state for iv in m.timeline()]
    assert states[:5] == [STATE_IDLE, STATE_PROMO, STATE_ACTIVE,
                          STATE_HIGH_TAIL, STATE_LOW_TAIL]
    # Intervals must be contiguous and non-overlapping.
    timeline = m.timeline()
    for prev, cur in zip(timeline, timeline[1:]):
        assert cur.start == pytest.approx(prev.end)
    residency = m.state_residency()
    assert residency[STATE_HIGH_TAIL] == pytest.approx(2 * P.high_tail_time)


def test_single_tail_technology_has_no_low_tail():
    m = RadioStateMachine(WIFI, keep_timeline=True)
    m.transfer(0.0, 4000, "ad")
    m.finalize()
    assert STATE_LOW_TAIL not in m.state_residency()


# ----------------------------------------------------------------------
# Settlement contract: finalize() settles, total_energy() only reads
# ----------------------------------------------------------------------


def test_tail_energy_at_horizon_boundary():
    """Regression: the trailing tail charged by ``finalize(end_time)``
    must track the horizon exactly across the boundary cases."""
    # (a) Horizon cuts inside the high-power tail stage.
    m = RadioStateMachine(P)
    rec = m.transfer(0.0, 4000, "ad")
    cut = 0.5 * P.high_tail_time
    m.finalize(end_time=rec.end_time + cut)
    assert rec.tail_energy == pytest.approx(P.high_tail_power * cut)

    # (b) Horizon cuts inside the low-power tail stage.
    m = RadioStateMachine(P)
    rec = m.transfer(0.0, 4000, "ad")
    low_cut = 2.0
    m.finalize(end_time=rec.end_time + P.high_tail_time + low_cut)
    assert rec.tail_energy == pytest.approx(
        P.high_tail_power * P.high_tail_time + P.low_tail_power * low_cut)

    # (c) Horizon exactly at the end of the full tail == no horizon.
    m = RadioStateMachine(P)
    rec = m.transfer(0.0, 4000, "ad")
    m.finalize(end_time=rec.end_time + P.tail_time)
    assert rec.tail_energy == pytest.approx(P.tail_energy)

    # (d) Horizon before the transfer even ends: no tail at all.
    m = RadioStateMachine(P)
    rec = m.transfer(0.0, 4000, "ad")
    m.finalize(end_time=rec.end_time - 0.5)
    assert rec.tail_energy == 0.0


def test_total_energy_requires_settlement():
    """``total_energy(horizon)`` is a pure accessor: it refuses to run
    before ``finalize`` because the pending tail would be missing."""
    m = RadioStateMachine(P)
    m.transfer(0.0, 4000, "ad")
    with pytest.raises(RuntimeError, match="finalize"):
        m.total_energy(horizon=3600.0)
    # Without a horizon it is just the settled communication energy.
    assert m.total_energy() == pytest.approx(m.communication_energy())
    m.finalize(end_time=3600.0)
    assert m.total_energy(horizon=3600.0) == pytest.approx(
        m.communication_energy()
        + P.idle_power * (3600.0 - m.active_time))


def test_active_time_tracked_without_timeline():
    """Active (non-idle) time no longer depends on ``keep_timeline`` —
    both modes agree with the recorded state residency."""
    def drive(machine):
        rec = machine.transfer(10.0, 4000, "ad")
        rec = machine.transfer(rec.end_time + 2.0, 50_000, "app")
        machine.transfer(rec.end_time + P.tail_time + 60.0, 4000, "ad")
        machine.finalize(end_time=7200.0)
        return machine

    lean = drive(RadioStateMachine(P))
    rich = drive(RadioStateMachine(P, keep_timeline=True))
    residency = rich.state_residency()
    non_idle = sum(sec for state, sec in residency.items()
                   if state != STATE_IDLE)
    assert rich.active_time == pytest.approx(non_idle)
    assert lean.active_time == pytest.approx(rich.active_time)
    assert lean.total_energy(horizon=7200.0) == pytest.approx(
        rich.total_energy(horizon=7200.0))
    assert lean.total_energy(horizon=7200.0) > lean.communication_energy()
