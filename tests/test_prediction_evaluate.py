"""Unit tests for the offline predictor evaluation harness."""

import pytest

from repro.prediction.evaluate import (
    EvaluationConfig,
    compare_models,
    evaluate_model,
    train_test_epoch_counts,
)
from repro.traces.stats import refresh_map
from repro.workloads.appstore import TOP15


@pytest.fixture(scope="module")
def eval_config():
    return EvaluationConfig(epoch_s=3600.0, train_days=3)


def test_config_validation():
    with pytest.raises(ValueError):
        EvaluationConfig(train_days=0)
    with pytest.raises(ValueError):
        EvaluationConfig(epoch_s=5000.0)


def test_oracle_has_zero_error(tiny_world, eval_config):
    log = evaluate_model("oracle", tiny_world.trace, tiny_world.refresh_of,
                         eval_config)
    assert len(log) > 0
    assert abs(log.residuals()).max() == 0.0


def test_evaluation_covers_all_test_epochs(tiny_world, tiny_config,
                                           eval_config):
    log = evaluate_model("ewma", tiny_world.trace, tiny_world.refresh_of,
                         eval_config)
    test_epochs = (tiny_config.n_days - eval_config.train_days) * 24
    assert len(log) == tiny_world.trace.n_users * test_epochs


def test_train_days_must_leave_test_epochs(tiny_world):
    config = EvaluationConfig(epoch_s=3600.0, train_days=6)
    with pytest.raises(ValueError):
        evaluate_model("ewma", tiny_world.trace, tiny_world.refresh_of,
                       config)


def test_informed_models_beat_naive_on_rmse(tiny_world, eval_config):
    summaries = compare_models(["last_value", "time_of_day", "oracle"],
                               tiny_world.trace, tiny_world.refresh_of,
                               eval_config)
    by_model = {s.model: s for s in summaries}
    assert by_model["oracle"].rmse == 0.0
    assert by_model["time_of_day"].rmse < by_model["last_value"].rmse
    # Sorted by MAE ascending.
    maes = [s.mae for s in summaries]
    assert maes == sorted(maes)


def test_train_test_epoch_counts_geometry(tiny_world, eval_config):
    counts, first_test = train_test_epoch_counts(
        tiny_world.trace, tiny_world.refresh_of, eval_config)
    assert first_test == 3 * 24
    series = next(iter(counts.values()))
    assert series.size == tiny_world.trace.n_days * 24


def test_total_slots_conserved(tiny_world, eval_config):
    counts, _ = train_test_epoch_counts(tiny_world.trace,
                                        tiny_world.refresh_of, eval_config)
    total = sum(int(series.sum()) for series in counts.values())
    refresh = refresh_map(TOP15)
    expected = sum(
        len(user.slots(refresh)) for user in tiny_world.trace.users.values())
    assert total == expected
