"""X5 (dist): coordinator/worker dispatch overhead over the pool.

Times the headline comparison at the scaling shape on three executors
sharing one prebuilt world: the serial pool (``--jobs 1``, the bit-
identity reference), the in-process pool at ``WORKERS`` workers, and
the distributed coordinator (``repro.dist``) at the same worker count.
The coordinator pays for a Manager process, per-message queue hops,
lease bookkeeping, and worker heartbeats — this benchmark records what
that costs relative to the pool on the same layout (min of
``REPEATS`` runs; single-core containers jitter and the minimum is the
stable estimator).

Asserted (the CI gate): all three merged results are bit-for-bit
identical (the repro.dist contract, DESIGN.md §13), and the quiet
coordinator run needed no retries — every worker survived, no lease
expired, no duplicate was discarded. The wall-clock rows are volatile,
so only the deterministic headline outcomes and dist accounting are
curated into the committed ledger record.

Shape knobs (environment-overridable): ``REPRO_BENCH_X5_USERS``
(default 400), ``REPRO_BENCH_X5_SHARDS`` (default 8),
``REPRO_BENCH_X5_WORKERS`` (default 2).
"""

from __future__ import annotations

import os

from conftest import bench_config, run_once

from repro.metrics.summary import format_table
from repro.runner import Runner, WorldCache

REPEATS = 2


def _shape() -> tuple[int, int]:
    return (int(os.environ.get("REPRO_BENCH_X5_SHARDS", 8)),
            int(os.environ.get("REPRO_BENCH_X5_WORKERS", 2)))


def _executor_runs():
    config = bench_config(
        n_users=int(os.environ.get("REPRO_BENCH_X5_USERS", 400)))
    n_shards, workers = _shape()
    world = WorldCache().get(config)  # build once, outside the timings
    runs = {}
    timings: dict[str, float] = {}
    for label, kwargs in (
            ("pool/serial", dict(parallelism=1)),
            (f"pool/{workers}w", dict(parallelism=workers)),
            (f"dist/{workers}w", dict(executor="dist", workers=workers))):
        results = [Runner(config, shards=n_shards, backend="batched",
                          world=world, **kwargs).run("headline")
                   for _ in range(REPEATS)]
        timings[label] = min(r.elapsed_s for r in results)
        runs[label] = results[0]
    return config, n_shards, workers, timings, runs


def test_x5_dist_overhead(benchmark, record_table):
    config, n_shards, workers, timings, runs = run_once(
        benchmark, _executor_runs)

    serial_label = "pool/serial"
    pool_label = f"pool/{workers}w"
    dist_label = f"dist/{workers}w"
    serial = runs[serial_label]
    dist = runs[dist_label]

    rows = []
    points = []
    for label in (serial_label, pool_label, dist_label):
        overhead = (timings[label] / timings[pool_label] - 1.0) * 100.0
        rows.append((label, f"{timings[label]:.2f}s",
                     "-" if label == pool_label else f"{overhead:+.1f}%"))
        points.append({"executor": label, "elapsed_s": timings[label],
                       "overhead_vs_pool_pct": overhead,
                       "n_shards": n_shards, "workers": workers})
    table = format_table(
        ["executor", "wall clock", "vs pool"],
        rows,
        title=(f"X5: coordinator dispatch overhead, headline "
               f"({config.n_users} users, {n_shards} shards, "
               f"{workers} workers, min of {REPEATS})"))

    stats = dist.dist
    assert stats is not None
    record_table("x5", table, result=points, config=config,
                 volatile_rows=True,
                 metrics={
                     "dist.energy_savings":
                         dist.comparison.energy_savings,
                     "dist.revenue_loss": dist.comparison.revenue_loss,
                     "dist.sla_violation_rate":
                         dist.comparison.sla_violation_rate,
                     "dist.workers_spawned": float(stats.workers_spawned),
                     "dist.requeues": float(stats.requeues),
                     "dist.duplicates_discarded":
                         float(stats.duplicates_discarded),
                     "dist.attempts": float(stats.attempts),
                 })

    # The contract: the executor never changes the numbers.
    for label in (pool_label, dist_label):
        result = runs[label]
        assert result.prefetch == serial.prefetch
        assert result.realtime == serial.realtime
        assert result.comparison == serial.comparison
        assert result.metrics == serial.metrics
    # A quiet substrate needs no recovery machinery: first attempt of
    # every shard lands, nothing is stolen, nothing is discarded.
    assert stats.workers_spawned == workers and stats.workers_lost == 0
    assert stats.requeues == 0 and stats.duplicates_discarded == 0
    assert stats.attempts == n_shards
