"""E5 (figure): SLA violation rate vs replication factor k.

Paper: violations fall steeply as ads are replicated across more
clients; the overbooking model achieves the low-violation regime
without paying full fixed-k replication.
"""

from conftest import run_once

from repro.experiments.e5_e6_overbooking import run_e5_e6


def test_e5_sla_vs_replication(benchmark, config, record_table):
    sweep = run_once(benchmark, run_e5_e6, config)
    violations = [p.sla_violation_rate for p in sweep.points]
    record_table("e5", sweep.render(), result=sweep, config=config,
                 metrics={
                     "sla_violation_rate.k_min": violations[0],
                     "sla_violation_rate.k_max": violations[-1],
                     "sla_violation_rate.best": min(violations),
                     "full_model.sla_violation_rate":
                         sweep.full_model.sla_violation_rate,
                     "full_model.k": sweep.full_model.k,
                 })
    # No replication misses deadlines wholesale; a little replication
    # helps a lot (the paper's falling branch).
    assert violations[0] > 0.10
    assert violations[1] < violations[0] * 0.8
    assert min(violations) < violations[0] * 0.7
    # Beyond the sweet spot, blind fixed-k replication *self-interferes*
    # (replicas crowd out other sales on finite display capacity), so
    # violations stop improving — naive replication cannot reach the
    # negligible regime at any k. See EXPERIMENTS.md.
    assert all(v > 0.05 for v in violations)
    # The model-driven system reaches it with ~1 static copy per sale.
    full = sweep.full_model
    assert full.sla_violation_rate < min(violations) / 5
    assert full.k <= min(p.k for p in sweep.points) + 0.5
