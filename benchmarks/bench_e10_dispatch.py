"""E10 (ablation): dispatch-policy choice.

Same predictions, same exchange; only replica placement differs (rescue
disabled so placement intelligence is visible). Probability-aware
staggered placement should beat random replication on violations *and*
duplicates, with fewer copies; adding rescue back reaches the
negligible regime.
"""

from conftest import run_once

from repro.experiments.e10_dispatch import run_e10


def test_e10_dispatch_ablation(benchmark, config, record_table):
    ablation = run_once(benchmark, run_e10, config)
    staggered = ablation.row_for("staggered")
    backfill = ablation.row_for("greedy-backfill")
    random_k = ablation.row_for("random-k")
    single = ablation.row_for("no-replication")
    full = ablation.row_for("staggered+rescue")
    record_table("e10", ablation.render(), result=ablation, config=config,
                 metrics={
                     "staggered.sla_violation_rate":
                         staggered.sla_violation_rate,
                     "staggered.duplicates_per_sale":
                         staggered.duplicates_per_sale,
                     "staggered.mean_replication":
                         staggered.mean_replication,
                     "random_k.sla_violation_rate":
                         random_k.sla_violation_rate,
                     "full.sla_violation_rate": full.sla_violation_rate,
                 })

    # Probability-aware placement beats random placement on violations,
    # duplicates, and copies used — the overbooking model's value.
    assert staggered.sla_violation_rate < 0.8 * random_k.sla_violation_rate
    assert staggered.duplicates_per_sale < random_k.duplicates_per_sale
    assert staggered.mean_replication < random_k.mean_replication
    # Backfill (dup-blind staggering) lands near staggered.
    assert abs(backfill.sla_violation_rate
               - staggered.sla_violation_rate) < 0.05
    # Static replication of any flavour beats a single copy on SLA.
    assert staggered.sla_violation_rate < single.sla_violation_rate
    # The full system (with rescue) is an order of magnitude better.
    assert full.sla_violation_rate < staggered.sla_violation_rate / 4
    assert full.sla_violation_rate < 0.03
