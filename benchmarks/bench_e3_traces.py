"""E3 (dataset figure): trace characterization.

Paper: per-user volume is heavy-tailed, usage is strongly diurnal, and
day-over-day self-similarity is what makes slot prediction possible.
"""

from conftest import run_once

from repro.experiments.e3_traces import run_e3


def test_e3_trace_characterization(benchmark, config, record_table):
    figure = run_once(benchmark, run_e3, config)
    summary = figure.summary
    record_table("e3", figure.render(), result=figure, config=config,
                 metrics={
                     "slots_per_user_day_median":
                         summary.slots_per_user_day_median,
                     "slots_per_user_day_p90":
                         summary.slots_per_user_day_p90,
                     "peak_to_trough": figure.peak_to_trough,
                     "peak_hour": float(summary.peak_hour),
                     "day_over_day_autocorrelation":
                         summary.day_over_day_autocorrelation,
                 })
    assert summary.n_users == config.n_users
    # Heavy tail: p90 well above the median.
    assert summary.slots_per_user_day_p90 > 2 * summary.slots_per_user_day_median
    # Strong diurnal rhythm with an evening peak.
    assert figure.peak_to_trough > 3.0
    assert 17 <= summary.peak_hour <= 23
    # Day-over-day predictability (the paper's enabling observation).
    assert summary.day_over_day_autocorrelation > 0.4
    # CDF probes are monotone.
    values = [v for _, v in figure.slots_cdf_probes]
    assert values == sorted(values)
