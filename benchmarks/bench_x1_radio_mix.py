"""X1 (extension): radio-technology sensitivity.

The relative savings story survives on LTE; on WiFi the *relative*
numbers look similar but the absolute joules collapse — there is almost
nothing left to save, the honest answer to "what happens as users move
to WiFi".
"""

from conftest import bench_config, run_once

from repro.experiments.x1_radio_mix import run_x1


def test_x1_radio_mix(benchmark, record_table):
    config = bench_config(n_users=80)
    study = run_once(benchmark, run_x1, config)
    g3 = study.row_for("3g")
    lte = study.row_for("lte")
    wifi = study.row_for("wifi")
    record_table("x1", study.render(), result=study, config=config,
                 metrics={
                     "3g.energy_savings": g3.energy_savings,
                     "lte.energy_savings": lte.energy_savings,
                     "3g.realtime_ad_j_per_user_day":
                         g3.realtime_ad_j_per_user_day,
                     "lte.realtime_ad_j_per_user_day":
                         lte.realtime_ad_j_per_user_day,
                     "wifi.realtime_ad_j_per_user_day":
                         wifi.realtime_ad_j_per_user_day,
                 })
    # Relative savings hold on both cellular technologies.
    assert g3.energy_savings > 0.45
    assert lte.energy_savings > 0.45
    # LTE's per-ad cost is comparable to 3G (big tail power, short promo).
    assert lte.realtime_ad_j_per_user_day > 0.5 * g3.realtime_ad_j_per_user_day
    # WiFi: almost nothing to save in absolute terms.
    assert wifi.realtime_ad_j_per_user_day < 0.05 * g3.realtime_ad_j_per_user_day
    # Mixed populations: absolute realtime ad energy falls monotonically
    # with the WiFi share; SLA/revenue stay in the negligible regime.
    mixed = study.mixed
    absolutes = [r.realtime_ad_j_per_user_day for r in mixed]
    assert all(a > b for a, b in zip(absolutes, absolutes[1:]))
    for row in mixed:
        assert row.sla_violation_rate < 0.05
        assert row.revenue_loss < 0.05
