"""E8 (figure): energy savings vs prefetch period.

Paper: savings grow as the period stretches (fewer syncs) and saturate
once the batch download dominates each wakeup; very short periods sync
too often to save much.
"""

from conftest import run_once

from repro.experiments.e8_energy_vs_epoch import run_e8


def test_e8_energy_vs_epoch(benchmark, config, record_table):
    sweep = run_once(benchmark, run_e8, config)
    points = sweep.points
    record_table("e8", sweep.render(), result=sweep, config=config,
                 metrics={
                     "energy_savings.shortest": points[0].energy_savings,
                     "energy_savings.longest": points[-1].energy_savings,
                     "syncs_per_user_day.shortest":
                         points[0].syncs_per_user_day,
                     "syncs_per_user_day.longest":
                         points[-1].syncs_per_user_day,
                     "sla_violation_rate.worst":
                         max(p.sla_violation_rate for p in points),
                 })
    assert [p.epoch_h for p in points] == [0.5, 1.0, 2.0, 3.0]
    # Syncs per user-day fall monotonically with the period.
    syncs = [p.syncs_per_user_day for p in points]
    assert all(a > b for a, b in zip(syncs, syncs[1:]))
    # All periods deliver solid savings; the 3 h period is not worse
    # than the 30 min one (amortisation wins).
    assert all(p.energy_savings > 0.35 for p in points)
    assert points[-1].energy_savings >= points[0].energy_savings - 0.03
    # SLA stays controlled across the sweep (deadline fixed).
    assert all(p.sla_violation_rate < 0.08 for p in points)
