"""X2 (extension): prefetching vs fast dormancy.

Fast dormancy (the OS-level tail cut) recovers part of the ad energy
overhead; application-level prefetching recovers a comparable amount on
unmodified radios, and the two compose — neither obsoletes the other.
"""

from conftest import bench_config, run_once

from repro.experiments.x2_fast_dormancy import run_x2


def test_x2_fast_dormancy(benchmark, record_table):
    config = bench_config(n_users=80)
    study = run_once(benchmark, run_x2, config)
    rt_3g = study.cell("realtime", "3g")
    rt_fd = study.cell("realtime", "3g-fd")
    pf_3g = study.cell("prefetch", "3g")
    pf_fd = study.cell("prefetch", "3g-fd")
    record_table("x2", study.render(), result=study, config=config,
                 metrics={
                     "realtime.3g_fd.savings":
                         rt_fd.savings_vs_baseline,
                     "prefetch.3g.savings": pf_3g.savings_vs_baseline,
                     "prefetch.3g_fd.savings":
                         pf_fd.savings_vs_baseline,
                     "prefetch.3g_fd.ad_j_per_user_day":
                         pf_fd.ad_j_per_user_day,
                     "realtime.3g.ad_j_per_user_day":
                         rt_3g.ad_j_per_user_day,
                 })

    assert rt_3g.savings_vs_baseline == 0.0
    # Each fix alone recovers a large chunk.
    assert rt_fd.savings_vs_baseline > 0.35
    assert pf_3g.savings_vs_baseline > 0.45
    # They compose: both together beat either alone by a clear margin.
    assert pf_fd.savings_vs_baseline > rt_fd.savings_vs_baseline + 0.10
    assert pf_fd.savings_vs_baseline > pf_3g.savings_vs_baseline + 0.10
    assert pf_fd.ad_j_per_user_day < rt_3g.ad_j_per_user_day * 0.35
