"""E1 (Table 1): ad energy share in the top-15 free apps.

Paper: in-app advertising is ~65% of the apps' communication energy and
~23% of their total energy, on average.
"""

from conftest import run_once

from repro.experiments.e1_app_energy import run_e1


def test_e1_app_energy(benchmark, record_table):
    study = run_once(benchmark, run_e1)
    record_table("e1", study.render(), result=study,
                 metrics={
                     "mean_ad_share_of_communication":
                         study.mean_ad_share_of_communication,
                     "mean_ad_share_of_total":
                         study.mean_ad_share_of_total,
                     "n_apps": float(len(study.rows)),
                 })

    assert len(study.rows) == 15
    # Shape: the two headline averages land near the paper's numbers.
    assert 0.55 <= study.mean_ad_share_of_communication <= 0.75
    assert 0.18 <= study.mean_ad_share_of_total <= 0.30
    # Offline games are ad-dominated; streaming apps are not.
    by_id = {r.app_id: r for r in study.rows}
    assert by_id["puzzle_blocks"].ad_share_of_communication == 1.0
    assert by_id["internet_radio"].ad_share_of_communication < 0.2
