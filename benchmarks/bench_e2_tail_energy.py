"""E2 (motivating figure): per-ad energy vs batch size.

Paper: an isolated ad fetch is tail-dominated; batching amortises the
promotion and tail, cutting per-ad energy by an order of magnitude.
"""

from conftest import run_once

from repro.experiments.e2_tail_energy import run_e2


def test_e2_tail_energy(benchmark, record_table):
    figure = run_once(benchmark, run_e2)
    record_table("e2", figure.render(), result=figure,
                 metrics={
                     "amortization.3g": figure.amortization_ratio("3g"),
                     "amortization.lte": figure.amortization_ratio("lte"),
                     "amortization.wifi": figure.amortization_ratio("wifi"),
                     "isolated_fetch_joules.3g": figure.series["3g"][0][1],
                     "isolated_fetch_joules.wifi":
                         figure.series["wifi"][0][1],
                 })

    for radio in ("3g", "lte"):
        values = [v for _, v in figure.series[radio]]
        # Strictly decreasing per-ad energy with batch size.
        assert all(a > b for a, b in zip(values, values[1:]))
        # Order-of-magnitude amortisation at batch 40.
        assert figure.amortization_ratio(radio) > 8.0
    # WiFi has almost no tail: batching barely matters by comparison.
    assert figure.amortization_ratio("wifi") < figure.amortization_ratio("3g")
    # Cellular isolated fetches cost ~10 J; WiFi a fraction of a joule.
    assert figure.series["3g"][0][1] > 5.0
    assert figure.series["wifi"][0][1] < 1.0
