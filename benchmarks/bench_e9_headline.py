"""E9 (Table 2): the headline end-to-end comparison.

Paper abstract: "our approach can reduce the ad energy overhead by over
50% with a negligible revenue loss and SLA violation rate."
"""

from conftest import bench_config, run_once

from repro.experiments.e9_headline import run_e9


def test_e9_headline(benchmark, record_table):
    config = bench_config()
    table = run_once(benchmark, run_e9, config)
    system = table.row_for("overbooking")
    record_table("e9", table.render(), result=table, config=config,
                 metrics={
                     "energy_savings": system.energy_savings,
                     "revenue_loss": system.revenue_loss,
                     "sla_violation_rate": system.sla_violation_rate,
                     "prefetch_served_rate": system.prefetch_served_rate,
                     "naive.sla_violation_rate":
                         table.row_for("naive-prefetch").sla_violation_rate,
                     "oracle.energy_savings":
                         table.row_for("oracle").energy_savings,
                 })
    # THE claim: >50% ad-energy reduction, negligible loss & violations.
    assert system.energy_savings > 0.50
    assert system.revenue_loss < 0.03
    assert system.sla_violation_rate < 0.03

    naive = table.row_for("naive-prefetch")
    oracle = table.row_for("oracle")
    # Naive prefetching saves energy but trashes the SLA.
    assert naive.sla_violation_rate > 0.15
    assert system.sla_violation_rate < naive.sla_violation_rate / 10
    # The oracle bounds the achievable savings from above.
    assert oracle.energy_savings > system.energy_savings
    assert oracle.prefetch_served_rate > 0.95
    # Prefetch serves the bulk of slots locally in the full system.
    assert system.prefetch_served_rate > 0.7
