"""Benchmark → run-ledger bridge.

Every ``bench_*.py`` run appends one deterministic
:class:`repro.obs.ledger.RunRecord` to the committed
``benchmarks/ledger.jsonl`` via the ``record_table`` fixture, so the
repo accumulates its own result trajectory: the record carries the run
manifest identity (config hash, seed, RNG stream-manifest hash), the
benchmark's curated headline metrics, and a content digest of the full
result rows. Timing-bearing observations (pytest-benchmark stats, peak
RSS — see :mod:`repro.obs.resources`) go to the gitignored
``ledger.timings.jsonl`` sibling, mirroring the committed-``.txt`` /
gitignored-``.json`` split of ``benchmarks/results/``.

``adprefetch obs ledger regress`` gates the latest record of every run
key against the committed trajectory (see DESIGN.md §11).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Mapping

from repro.experiments.config import ExperimentConfig
from repro.obs.ledger import Ledger, RunRecord
from repro.obs.manifest import build_manifest
from repro.obs.resources import collect_telemetry

#: The committed ledger benchmarks append to.
LEDGER_PATH = Path(__file__).parent / "ledger.jsonl"


def rows_digest(rows: object) -> str:
    """Content hash of a benchmark's plain-JSON result rows."""
    payload = json.dumps(rows, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def append_bench_record(experiment_id: str, *,
                        config: ExperimentConfig | None,
                        metrics: Mapping[str, float] | None,
                        rows: object,
                        stats: Mapping[str, float]) -> RunRecord:
    """Append one benchmark run to the committed ledger.

    ``metrics`` is the benchmark's curated map of headline scalar
    results (the quantities ``regress`` guards); ``rows`` is the full
    plain-JSON result payload, pinned by digest without being stored.
    ``stats`` (pytest-benchmark timing) never enters the record — it
    rides the timings sibling next to the sampled resource telemetry.
    ``rows=None`` skips the digest (benchmarks whose rows carry
    wall-clock numbers). Config-free artifacts (static app-model
    tables) still get a record keyed by the experiment id alone.
    """
    digest = rows_digest(rows) if rows is not None else ""
    curated = {str(k): float(v) for k, v in dict(metrics or {}).items()}
    if config is not None:
        manifest = build_manifest(config, system=experiment_id, n_shards=1,
                                  parallelism=1, trace_enabled=False,
                                  elapsed_s=0.0)
        record = RunRecord.from_manifest(manifest, experiment=experiment_id,
                                         metrics=curated,
                                         metrics_digest=digest)
    else:
        record = RunRecord(experiment=experiment_id, system=experiment_id,
                           config_hash="static", seed=0, n_shards=1,
                           parallelism=1, metrics=curated,
                           metrics_digest=digest)
    telemetry = collect_telemetry(elapsed_s=float(stats.get("total", 0.0)))
    return Ledger(LEDGER_PATH).append(
        record, telemetry=telemetry,
        timing_extra={"benchmark": dict(stats)} if stats else None)
