"""Shared benchmark infrastructure.

Each benchmark regenerates one paper artifact at *bench scale* (a
smaller population than the paper's 1,750 users so the suite completes
in minutes) and asserts the paper's qualitative shape. Scale knobs are
environment-overridable:

``REPRO_BENCH_USERS`` (default 150), ``REPRO_BENCH_DAYS`` (default 8),
``REPRO_BENCH_TRAIN_DAYS`` (default 4), ``REPRO_BENCH_SEED`` (default 7).

Rendered tables are printed (visible with ``-s``) and written to
``benchmarks/results/`` so a plain ``pytest benchmarks/`` run leaves the
reproduced artifacts on disk.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig

RESULTS_DIR = Path(__file__).parent / "results"


def bench_config(**overrides) -> ExperimentConfig:
    params = dict(
        n_users=int(os.environ.get("REPRO_BENCH_USERS", 150)),
        n_days=int(os.environ.get("REPRO_BENCH_DAYS", 8)),
        train_days=int(os.environ.get("REPRO_BENCH_TRAIN_DAYS", 4)),
        seed=int(os.environ.get("REPRO_BENCH_SEED", 7)),
    )
    params.update(overrides)
    return ExperimentConfig(**params)


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return bench_config()


@pytest.fixture(scope="session")
def record_table():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(experiment_id: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
