"""Shared benchmark infrastructure.

Each benchmark regenerates one paper artifact at *bench scale* (a
smaller population than the paper's 1,750 users so the suite completes
in minutes) and asserts the paper's qualitative shape. Scale knobs are
environment-overridable:

``REPRO_BENCH_USERS`` (default 150), ``REPRO_BENCH_DAYS`` (default 8),
``REPRO_BENCH_TRAIN_DAYS`` (default 4), ``REPRO_BENCH_SEED`` (default 7).

Rendered tables are printed (visible with ``-s``) and written to
``benchmarks/results/`` so a plain ``pytest benchmarks/`` run leaves the
reproduced artifacts on disk. Each benchmark also writes a
machine-readable ``results/<id>.json`` holding the result rows, the
pytest-benchmark timing stats, and a run manifest (config hash, seed,
RNG stream-manifest hash — see :mod:`repro.obs.manifest`).
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    streams_manifest_hash,
)

RESULTS_DIR = Path(__file__).parent / "results"


def bench_config(**overrides) -> ExperimentConfig:
    params = dict(
        n_users=int(os.environ.get("REPRO_BENCH_USERS", 150)),
        n_days=int(os.environ.get("REPRO_BENCH_DAYS", 8)),
        train_days=int(os.environ.get("REPRO_BENCH_TRAIN_DAYS", 4)),
        seed=int(os.environ.get("REPRO_BENCH_SEED", 7)),
    )
    params.update(overrides)
    return ExperimentConfig(**params)


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return bench_config()


def _jsonable(value):
    """Best-effort plain-JSON conversion for result rows."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return _jsonable(value.tolist())
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def _rows_of(result):
    if result is None:
        return []
    rows = getattr(result, "rows", None)
    if rows is not None:
        return list(rows)
    if isinstance(result, (list, tuple)):
        return list(result)
    return [result]


def _stats_of(benchmark) -> dict[str, float]:
    """The pytest-benchmark timing stats, as plain numbers."""
    meta = getattr(benchmark, "stats", None)
    stats = getattr(meta, "stats", meta)
    out: dict[str, float] = {}
    for field in ("min", "max", "mean", "stddev", "median", "rounds",
                  "total"):
        value = getattr(stats, field, None)
        if isinstance(value, (int, float)):
            out[field] = value
    return out


def _manifest_of(experiment_id: str, config: ExperimentConfig | None,
                 elapsed_s: float) -> dict[str, object]:
    if config is None:
        # Config-free artifacts (static app-model tables) still pin the
        # stream manifest so drift is visible in the recorded results.
        return {"schema_version": MANIFEST_SCHEMA_VERSION,
                "system": experiment_id,
                "rng_stream_manifest_hash": streams_manifest_hash()}
    return build_manifest(config, system=experiment_id, n_shards=1,
                          parallelism=1, trace_enabled=False,
                          elapsed_s=elapsed_s).to_jsonable()


@pytest.fixture
def record_table(benchmark):
    """Record one benchmark's artifacts under ``benchmarks/results/``.

    ``_record`` writes the rendered table as ``<id>.txt`` (and echoes it
    for ``-s`` runs) plus a machine-readable ``<id>.json`` combining the
    result rows, the pytest-benchmark stats, and the run manifest — and
    appends one deterministic record to the committed run ledger
    (``benchmarks/ledger.jsonl``; see :mod:`_ledger`). ``metrics`` is
    the benchmark's curated map of headline scalars, the quantities
    ``adprefetch obs ledger regress`` guards.
    """
    import _ledger

    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(experiment_id: str, text: str, *, result=None,
                config: ExperimentConfig | None = None,
                metrics: dict[str, float] | None = None,
                volatile_rows: bool = False) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")
        stats = _stats_of(benchmark)
        rows = _jsonable(_rows_of(result))
        payload = {
            "experiment": experiment_id,
            "rows": rows,
            "benchmark": stats,
            "manifest": _manifest_of(experiment_id, config,
                                     stats.get("total", 0.0)),
        }
        (RESULTS_DIR / f"{experiment_id}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        # volatile_rows: the rows themselves carry wall-clock numbers
        # (scaling curves), so pinning their digest would make the
        # record nondeterministic — only the curated metrics go in.
        _ledger.append_bench_record(experiment_id, config=config,
                                    metrics=metrics,
                                    rows=None if volatile_rows else rows,
                                    stats=stats)

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
