"""E7 (figure): SLA violation and revenue loss vs deadline.

Paper: tight deadlines give static overbooking no room to wait for the
right client; relaxed deadlines make it nearly free. The full system's
rescue channel removes the sensitivity.
"""

from conftest import run_once

from repro.experiments.e7_deadline import run_e7


def test_e7_deadline_sweep(benchmark, config, record_table):
    sweep = run_once(benchmark, run_e7, config)
    static = sweep.series("static")
    full = sweep.series("full")
    record_table("e7", sweep.render(), result=sweep, config=config,
                 metrics={
                     "static.sla_violation_rate.1h":
                         static[0].sla_violation_rate,
                     "static.sla_violation_rate.8h":
                         static[-1].sla_violation_rate,
                     "full.sla_violation_rate.worst":
                         max(p.sla_violation_rate for p in full),
                     "full.energy_savings.worst":
                         min(p.energy_savings for p in full),
                 })
    assert [p.deadline_h for p in static] == [1.0, 2.0, 4.0, 8.0]
    # Static overbooking is strongly deadline-sensitive: the 8 h point
    # cuts the 1 h point's violations by at least 2x.
    assert static[0].sla_violation_rate > 2 * static[-1].sla_violation_rate
    assert static[0].sla_violation_rate > 0.10
    # The full system sits in the negligible regime at every deadline.
    for p in full:
        assert p.sla_violation_rate < 0.05
        assert p.energy_savings > 0.35
    # And always beats static on violations.
    for s, f in zip(static, full):
        assert f.sla_violation_rate < s.sla_violation_rate
