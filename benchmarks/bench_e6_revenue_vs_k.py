"""E6 (figure): revenue loss vs replication factor k.

Paper: naive replication buys SLA compliance with duplicate
impressions — revenue loss grows with k. The overbooking model's
staggering + reconciliation keeps both low simultaneously.
"""

from conftest import run_once

from repro.experiments.e5_e6_overbooking import run_e5_e6


def test_e6_revenue_vs_replication(benchmark, config, record_table):
    sweep = run_once(benchmark, run_e5_e6, config)
    duplicates = [p.duplicates_per_sale for p in sweep.points]
    record_table("e6", sweep.render(), result=sweep, config=config,
                 metrics={
                     "duplicates_per_sale.k_min": duplicates[0],
                     "duplicates_per_sale.k_max": duplicates[-1],
                     "revenue_loss.k_max": sweep.points[-1].revenue_loss,
                     "full_model.duplicates_per_sale":
                         sweep.full_model.duplicates_per_sale,
                     "full_model.revenue_loss":
                         sweep.full_model.revenue_loss,
                 })
    # Duplicates grow with fixed-k replication...
    assert duplicates[-1] > 2 * duplicates[0]
    for earlier, later in zip(duplicates, duplicates[1:]):
        assert later >= earlier * 0.8
    # ...and so does revenue loss at high k.
    assert sweep.points[-1].revenue_loss > sweep.points[0].revenue_loss
    # The full model sits in the good corner: fewer duplicates than
    # k=2 replication AND fewer violations than any sweep point.
    full = sweep.full_model
    k2 = sweep.points[1]
    assert full.duplicates_per_sale < k2.duplicates_per_sale
    assert full.revenue_loss < k2.revenue_loss
    assert full.sla_violation_rate <= min(
        p.sla_violation_rate for p in sweep.points)
