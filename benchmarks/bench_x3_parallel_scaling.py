"""X3 (scaling): backend speedup and shard-parallel scaling.

Two sections, one committed artifact:

**Backend speedup.** Times a single shard of the headline run on both
execution backends at a demand-rich shape (many campaigns per shard —
the regime the batched backend exists for; see DESIGN.md §10). The
event engine's auction cost grows linearly with the campaign count
while the batched engine's stays flat, so this is where the vectorized
hot paths pay off. Each backend is timed ``BACKEND_REPEATS`` times and
the minimum is kept — single-core containers jitter by 15-20% and the
minimum is the stable estimator. Asserted (the CI gate): batched
single-shard throughput is at least ``SPEEDUP_FLOOR``x the event
engine, and the two backends' shard results are bit-for-bit identical.

**Parallel scaling.** The original X3 curve: the headline comparison on
a 400-user world sharded 8 ways at 1/2/4 workers (batched backend, so
the suite stays fast). Two assertions: metrics are bit-for-bit
identical at every worker count (the runner's core contract), and on a
machine with >= 4 CPUs, 4 workers beat the serial run by >= 2x. On
smaller machines the speedup line is recorded but not asserted —
process-pool overhead with one core can only slow things down.

**Beat overhead (X3c).** Times one batched shard with the live
telemetry plane on (a ``BeatEmitter`` at an aggressive 0.2s interval
feeding a no-op transport, plus the flight-recorder ring) against the
same shard quiet. The live plane's pitch is "observation only, cheap
enough to leave on" (DESIGN.md §12); this section records the actual
price and asserts the shard's results stay bit-identical either way.

Shape knobs (environment-overridable): ``REPRO_BENCH_X3_USERS``
(default 800), ``REPRO_BENCH_X3_CAMPAIGNS`` (default 2400),
``REPRO_BENCH_X3_SHARDS`` (default 16) for the backend section;
``REPRO_BENCH_SCALING_USERS`` (default 400) for the parallel and
beat-overhead sections.
"""

from __future__ import annotations

import os

from pathlib import Path

from conftest import bench_config, run_once

from repro.metrics.summary import format_table
from repro.obs.live import CallbackTransport, WorkerLiveSetup
from repro.runner import Runner, WorldCache, _run_shard

WORKER_COUNTS = (1, 2, 4)
N_SHARDS = 8

#: CI gate — batched single-shard throughput must stay above this
#: multiple of the event engine at the demand-rich shape. Measured
#: ~7.9x on a 1-CPU container; 3x leaves headroom for machine noise.
SPEEDUP_FLOOR = 3.0
BACKEND_REPEATS = 2


def _backend_speedup(cache: WorldCache):
    """Single-shard wall clock per backend at the demand-rich shape."""
    config = bench_config(
        n_users=int(os.environ.get("REPRO_BENCH_X3_USERS", 800)),
        n_campaigns=int(os.environ.get("REPRO_BENCH_X3_CAMPAIGNS", 2400)))
    n_shards = int(os.environ.get("REPRO_BENCH_X3_SHARDS", 16))
    world = cache.get(config)  # build once, outside the timings
    timings: dict[str, float] = {}
    shard_results = {}
    for backend in ("event", "batched"):
        runner = Runner(config, shards=n_shards, backend=backend,
                        world=world)
        task = runner._tasks("headline", world)[0]
        # _run_shard is the worker entry point the pool executes; timing
        # it times exactly what production shards cost, and its
        # ShardResult carries the PhaseProfiler's elapsed_s.
        results = [_run_shard(task) for _ in range(BACKEND_REPEATS)]
        timings[backend] = min(r.elapsed_s for r in results)
        shard_results[backend] = results[0]
    return config, n_shards, timings, shard_results


def _scaling_curve(cache: WorldCache):
    config = bench_config(
        n_users=int(os.environ.get("REPRO_BENCH_SCALING_USERS", 400)))
    world = cache.get(config)
    results = []
    for workers in WORKER_COUNTS:
        result = Runner(config, parallelism=workers, shards=N_SHARDS,
                        backend="batched", world=world).run("headline")
        results.append(result)
    return config, results


def _beat_overhead(cache: WorldCache):
    """One batched shard, live telemetry on vs off (min of repeats)."""
    config = bench_config(
        n_users=int(os.environ.get("REPRO_BENCH_SCALING_USERS", 400)))
    world = cache.get(config)
    runner = Runner(config, shards=N_SHARDS, backend="batched",
                    world=world)
    task = runner._tasks("headline", world)[0]
    setup = WorkerLiveSetup(
        transport=CallbackTransport(lambda beat: None),
        beat_interval_s=0.2,
        ring_size=256,
        postmortem_dir=Path("obs-runs") / "postmortems",  # unused: no crash
        system="headline", backend="batched")
    timings: dict[str, float] = {}
    shard_results = {}
    for label, live in (("quiet", None), ("live", setup)):
        results = [_run_shard(task, live) for _ in range(BACKEND_REPEATS)]
        timings[label] = min(r.elapsed_s for r in results)
        shard_results[label] = results[0]
    return timings, shard_results


def _both_sections():
    cache = WorldCache()
    return (_backend_speedup(cache), _scaling_curve(cache),
            _beat_overhead(cache))


def test_x3_scaling(benchmark, record_table):
    ((backend_config, n_shards, timings, shard_results),
     (config, results),
     (beat_timings, beat_results)) = run_once(benchmark, _both_sections)

    # -- section 1: backend speedup ------------------------------------
    speedup = timings["event"] / timings["batched"]
    backend_rows = []
    points = []
    for backend in ("event", "batched"):
        ratio = timings["event"] / timings[backend]
        backend_rows.append((backend, f"{timings[backend]:.2f}s",
                             f"{ratio:.2f}x"))
        points.append({"section": "backend_speedup", "backend": backend,
                       "n_users": backend_config.n_users,
                       "n_campaigns": backend_config.n_campaigns,
                       "n_shards": n_shards,
                       "shard_elapsed_s": timings[backend],
                       "speedup": ratio})
    backend_table = format_table(
        ["backend", "shard wall clock", "speedup"],
        backend_rows,
        title=(f"X3a: single-shard backend speedup "
               f"({backend_config.n_users} users, "
               f"{backend_config.n_campaigns} campaigns, "
               f"{n_shards} shards, min of {BACKEND_REPEATS})"))

    # -- section 2: parallel scaling -----------------------------------
    serial = results[0]
    scaling_rows = []
    for result in results:
        ratio = serial.elapsed_s / result.elapsed_s
        scaling_rows.append((f"{result.parallelism}", f"{result.n_shards}",
                             f"{result.elapsed_s:.1f}s", f"{ratio:.2f}x"))
        points.append({"section": "parallel_scaling",
                       "workers": result.parallelism,
                       "shards": result.n_shards,
                       "elapsed_s": result.elapsed_s,
                       "speedup": ratio})
    scaling_table = format_table(
        ["workers", "shards", "wall clock", "speedup"],
        scaling_rows,
        title=(f"X3b: shard-parallel scaling, batched backend "
               f"({config.n_users} users, {os.cpu_count()} CPUs)"))

    # -- section 3: beat overhead --------------------------------------
    overhead = (beat_timings["live"] / beat_timings["quiet"] - 1.0) * 100.0
    beat_rows = []
    for label in ("quiet", "live"):
        beat_rows.append((label, f"{beat_timings[label]:.2f}s",
                          "-" if label == "quiet"
                          else f"{overhead:+.1f}%"))
        points.append({"section": "beat_overhead", "mode": label,
                       "shard_elapsed_s": beat_timings[label],
                       "overhead_pct": 0.0 if label == "quiet"
                       else overhead})
    beat_table = format_table(
        ["shard", "wall clock", "overhead"],
        beat_rows,
        title=(f"X3c: live-beat overhead, one batched shard "
               f"({config.n_users} users, 0.2s beat interval, "
               f"min of {BACKEND_REPEATS})"))

    # Rows carry wall-clock timings, so only deterministic outcomes of
    # the serial run are curated into the ledger record.
    serial_result = results[0]
    record_table("x3",
                 backend_table + "\n\n" + scaling_table
                 + "\n\n" + beat_table,
                 result=points, config=config, volatile_rows=True,
                 metrics={
                     "serial.energy_savings":
                         serial_result.comparison.energy_savings,
                     "serial.revenue_loss":
                         serial_result.comparison.revenue_loss,
                     "serial.sla_violation_rate":
                         serial_result.comparison.sla_violation_rate,
                     "serial.n_shards": float(serial_result.n_shards),
                 })

    # The contract: the backend never changes the numbers...
    event, batched = shard_results["event"], shard_results["batched"]
    assert batched.prefetch == event.prefetch
    assert batched.realtime == event.realtime
    # ...and neither does the worker count.
    for result in results[1:]:
        assert result.prefetch == serial.prefetch
        assert result.realtime == serial.realtime
        assert result.comparison == serial.comparison
    # ...and neither does the live telemetry plane (beats observe only).
    quiet, live = beat_results["quiet"], beat_results["live"]
    assert live.prefetch == quiet.prefetch
    assert live.realtime == quiet.realtime
    assert live.metrics == quiet.metrics

    # The payoff, gated in CI: vectorized shards are >= 3x faster where
    # demand is rich...
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched backend only {speedup:.2f}x the event engine "
        f"(floor {SPEEDUP_FLOOR}x) — vectorized hot path regressed?")
    # ...and shards spread across cores where the hardware allows it.
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        four_workers = results[WORKER_COUNTS.index(4)]
        assert serial.elapsed_s / four_workers.elapsed_s >= 2.0
