"""X3 (scaling): shard-parallel runner speedup vs worker count.

Runs the headline comparison on a 400-user world sharded 8 ways at
1/2/4 workers and records the wall-clock scaling curve. Two assertions:

* metrics are bit-for-bit identical at every worker count (the runner's
  core contract);
* on a machine with >= 4 CPUs, 4 workers beat the serial run by >= 2x.
  On smaller machines the speedup line is recorded but not asserted —
  process-pool overhead with one core can only slow things down.
"""

from __future__ import annotations

import os

from conftest import bench_config, run_once

from repro.metrics.summary import format_table
from repro.runner import Runner, WorldCache

WORKER_COUNTS = (1, 2, 4)
N_SHARDS = 8


def _scaling_curve():
    config = bench_config(
        n_users=int(os.environ.get("REPRO_BENCH_SCALING_USERS", 400)))
    world = WorldCache().get(config)  # build once, outside the timings
    results = []
    for workers in WORKER_COUNTS:
        result = Runner(config, parallelism=workers, shards=N_SHARDS,
                        world=world).run("headline")
        results.append(result)
    return config, results


def test_x3_parallel_scaling(benchmark, record_table):
    config, results = run_once(benchmark, _scaling_curve)
    serial = results[0]

    rows = []
    points = []
    for result in results:
        speedup = serial.elapsed_s / result.elapsed_s
        rows.append((f"{result.parallelism}", f"{result.n_shards}",
                     f"{result.elapsed_s:.1f}s", f"{speedup:.2f}x"))
        points.append({"workers": result.parallelism,
                       "shards": result.n_shards,
                       "elapsed_s": result.elapsed_s,
                       "speedup": speedup})
    record_table("x3", format_table(
        ["workers", "shards", "wall clock", "speedup"],
        rows,
        title=f"X3: shard-parallel scaling ({config.n_users} users, "
              f"{os.cpu_count()} CPUs)"),
        result=points, config=config)

    # The contract: worker count never changes the numbers.
    for result in results[1:]:
        assert result.prefetch == serial.prefetch
        assert result.realtime == serial.realtime
        assert result.comparison == serial.comparison

    # The payoff: near-linear scaling where the hardware allows it.
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        four_workers = results[WORKER_COUNTS.index(4)]
        assert serial.elapsed_s / four_workers.elapsed_s >= 2.0
