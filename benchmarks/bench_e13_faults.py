"""E13: fault injection and resilience at bench scale.

The acceptance claim: with rescue enabled, prefetching's SLA violation
rate stays strictly below real-time serving's ad-miss rate at every
non-zero fault intensity — the cache plus contact-staleness rescue
absorb faults that cost real-time serving an impression outright.
"""

from conftest import bench_config, run_once

from repro.experiments.e13_faults import INTENSITIES, run_e13


def test_e13_faults(benchmark, record_table):
    config = bench_config()
    table = run_once(benchmark, run_e13, config)
    top = max(INTENSITIES)
    record_table("e13", table.render(), result=table, config=config,
                 metrics={
                     "top_intensity": top,
                     "realtime.failure_rate.top":
                         table.row_for(top, "realtime").failure_rate,
                     "rescue.failure_rate.top":
                         table.row_for(top, "prefetch+rescue").failure_rate,
                     "rescue.revenue_loss.top":
                         table.row_for(top, "prefetch+rescue").revenue_loss,
                     "prefetch.failure_rate.top":
                         table.row_for(top, "prefetch").failure_rate,
                 })

    for intensity in INTENSITIES:
        realtime = table.row_for(intensity, "realtime")
        rescue = table.row_for(intensity, "prefetch+rescue")
        if intensity == 0.0:
            # The zero-fault anchor: each system's own baseline.
            assert realtime.failure_rate == 0.0
            assert rescue.revenue_loss == 0.0
            assert rescue.energy_overhead == 0.0
            continue
        # THE claim: rescue keeps broken promises below realtime's.
        assert rescue.failure_rate < realtime.failure_rate
        # Realtime misses at least the raw loss probability (every slot
        # fetch is exposed, and outages/blackouts only add to it).
        assert realtime.failure_rate >= intensity * 0.8
        # Faults cost revenue in every system, monotonically-ish.
        assert realtime.revenue_loss > 0.0
        assert rescue.revenue_loss > 0.0
        # Resilience costs energy (retries, failed attempts, rescues) —
        # but prefetching stays far below realtime's per-user ad energy.
        assert rescue.ad_joules_per_user_day < \
            realtime.ad_joules_per_user_day

    # Rescue beats no-rescue prefetch on SLA at the top intensity.
    top = max(INTENSITIES)
    assert (table.row_for(top, "prefetch+rescue").failure_rate
            < table.row_for(top, "prefetch").failure_rate)
