"""E4 (model figure): slot-prediction accuracy.

Paper: simple habit-based client models (time-of-day averages) beat
history-blind baselines; residual error is left to overbooking.
"""

from conftest import run_once

from repro.experiments.e4_prediction import run_e4


def test_e4_prediction_accuracy(benchmark, config, record_table):
    figure = run_once(benchmark, run_e4, config)
    tod = figure.summary_for("time_of_day")
    ewma = figure.summary_for("ewma")
    last = figure.summary_for("last_value")
    mean = figure.summary_for("global_mean")
    record_table("e4", figure.render(), result=figure, config=config,
                 metrics={
                     "time_of_day.rmse": tod.rmse,
                     "time_of_day.mae": tod.mae,
                     "time_of_day.exact_rate": tod.exact_rate,
                     "ewma.rmse": ewma.rmse,
                     "last_value.rmse": last.rmse,
                     "global_mean.mae": mean.mae,
                 })

    oracle = figure.summary_for("oracle")
    assert oracle.mae == 0.0 and oracle.rmse == 0.0
    # Habit-based models beat the history-blind ones on RMSE.
    assert tod.rmse < last.rmse
    assert ewma.rmse < last.rmse
    # Versus the flat mean, diurnal structure shows up as far more
    # exactly-right epochs (the flat model is almost never exact) at
    # comparable or better MAE.
    assert tod.exact_rate > 3 * mean.exact_rate
    assert tod.mae <= mean.mae * 1.05
    # The conservative quantile model under-predicts by design.
    quantile = figure.summary_for("quantile")
    assert quantile.bias < tod.bias
    # Every real model has substantial residual error — the whole reason
    # overbooking exists.
    assert tod.mae > 1.0
