"""E11 (ablation): client-model choice, end to end.

Paper: simple models suffice — the overbooking layer compresses the gap
between imperfect predictors and the oracle on the metrics that matter.
"""

from conftest import run_once

from repro.experiments.e11_predictor import run_e11


def test_e11_predictor_ablation(benchmark, config, record_table):
    ablation = run_once(benchmark, run_e11, config)
    oracle = ablation.row_for("oracle")
    ewma = ablation.row_for("ewma")
    tod = ablation.row_for("time_of_day")
    last = ablation.row_for("last_value")
    record_table("e11", ablation.render(), result=ablation, config=config,
                 metrics={
                     "oracle.energy_savings": oracle.energy_savings,
                     "ewma.energy_savings": ewma.energy_savings,
                     "ewma.sla_violation_rate": ewma.sla_violation_rate,
                     "time_of_day.sla_violation_rate":
                         tod.sla_violation_rate,
                     "last_value.sla_violation_rate":
                         last.sla_violation_rate,
                 })

    # Oracle is the upper bound on savings.
    for row in ablation.rows:
        assert row.energy_savings <= oracle.energy_savings + 0.01
    # Habit-based models keep SLA violations in the negligible regime.
    assert ewma.sla_violation_rate < 0.05
    assert tod.sla_violation_rate < 0.05
    # Despite large offline-accuracy gaps (E4), end-to-end violation
    # rates stay within a few points of each other — the overbooking
    # layer absorbing prediction error is the paper's thesis.
    assert abs(last.sla_violation_rate - ewma.sla_violation_rate) < 0.05
    # Learned models land within 25 points of the oracle's savings.
    assert ewma.energy_savings > oracle.energy_savings - 0.30
