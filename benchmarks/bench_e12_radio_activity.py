"""E12 (figure): radio wakeups and state residency.

The mechanism figure: prefetching cuts radio wakeups and the time spent
in (tail) power states, which is where the energy goes.
"""

from conftest import bench_config, run_once

from repro.experiments.e12_radio_activity import run_e12


def test_e12_radio_activity(benchmark, record_table):
    # Timelines are memory-hungry: use a reduced population.
    config = bench_config(n_users=60)
    figure = run_once(benchmark, run_e12, config)
    rt = figure.realtime_residency
    pf = figure.prefetch_residency
    record_table("e12", figure.render(), result=figure, config=config,
                 metrics={
                     "wakeup_reduction": figure.wakeup_reduction,
                     "realtime.wakeups_per_user_day":
                         figure.realtime_wakeups_per_user_day,
                     "prefetch.wakeups_per_user_day":
                         figure.prefetch_wakeups_per_user_day,
                     "realtime.tail_residency":
                         rt.get("high_tail", 0.0) + rt.get("low_tail", 0.0),
                     "prefetch.tail_residency":
                         pf.get("high_tail", 0.0) + pf.get("low_tail", 0.0),
                 })

    assert figure.wakeup_reduction > 0.15
    assert (figure.prefetch_wakeups_per_user_day
            < figure.realtime_wakeups_per_user_day)
    # Tail states dominate active time on 3G — the tail-energy problem.
    rt = figure.realtime_residency
    tail = rt.get("high_tail", 0.0) + rt.get("low_tail", 0.0)
    assert tail > rt.get("active", 0.0)
    # Prefetching cuts tail residency.
    pf = figure.prefetch_residency
    pf_tail = pf.get("high_tail", 0.0) + pf.get("low_tail", 0.0)
    assert pf_tail < tail
