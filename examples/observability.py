"""Observability: trace a run, read its metrics, open it in Perfetto.

Runs the headline comparison with tracing on, then walks the three
observability pillars (DESIGN.md §8):

* the merged **metrics** registry — per-component counters like
  ``server.rescues`` and ``client.beacons``, identical at any
  parallelism;
* the **sim-time trace** — spans/instants stamped with simulated
  seconds, exported as JSONL and as Chrome ``trace_event`` JSON you can
  drag into https://ui.perfetto.dev;
* the **wall-clock profile** — where real time went (world build, each
  shard, merge), which is free to vary run to run while the simulation
  output stays bit-identical.

Run:  python examples/observability.py [n_users]
"""

import sys
from pathlib import Path

from repro import ExperimentConfig, ObsOptions, Runner
from repro.obs.summarize import summarize


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    out_dir = Path("obs-runs")
    config = ExperimentConfig(n_users=n_users, n_days=8, train_days=4,
                              seed=7)
    print(f"Tracing a headline run of {config.n_users} users ...")
    result = Runner(config, parallelism=2,
                    obs=ObsOptions(out_dir=out_dir, trace=True)
                    ).run("headline")

    # 1. Metrics: every component counted into one mergeable registry.
    counters = result.metrics.counters
    print("\nPer-component counters (merged across shards):")
    for name in ("exchange.auctions.held", "server.plan.assignments",
                 "server.rescues", "client.beacons", "client.syncs",
                 "radio.wakeups"):
        print(f"  {name:<28} {counters.get(name, 0):>10.0f}")

    # 2. The trace: sim-time events, shard-ordered.
    events = result.trace_events
    spans = sum(1 for e in events if e.phase == "X")
    print(f"\nTrace: {len(events)} events ({spans} spans) across "
          f"{result.n_shards} shards, all stamped with simulated time.")
    first = events[0]
    print(f"  first event: t={first.ts:.0f}s {first.component}."
          f"{first.name} (shard {first.shard})")

    # 3. Wall-clock profile: where the real seconds went.
    print("\nWall-clock profile:")
    for name, stats in result.profile.phases.items():
        print(f"  {name:<20} {stats.calls:>3} call(s) "
              f"{stats.total_s:>8.3f}s")

    print(f"\nArtifacts in {result.artifacts_dir}/ — summarize renders "
          "them back:\n")
    print(summarize(out_dir))
    print("Perfetto: open https://ui.perfetto.dev and drag in "
          f"{result.artifacts_dir}/trace.chrome.json — one process per "
          "shard, one thread per component.")


if __name__ == "__main__":
    main()
