"""Scenario: plugging a custom client model into the system.

The predictor registry makes the client model a drop-in component. This
example implements a day-of-week-aware predictor (weekday and weekend
habits learned separately), registers it, compares it offline against
the built-in suite, and then runs it end to end.

Run:  python examples/custom_predictor.py
"""

import numpy as np

from repro import ExperimentConfig, Runner, WorldSource
from repro.metrics import fmt_pct, format_table
from repro.prediction import (
    EvaluationConfig,
    SlotPredictor,
    compare_models,
    register_predictor,
)


@register_predictor("day_of_week")
class DayOfWeekPredictor(SlotPredictor):
    """Per-epoch-of-day means, kept separately for weekdays/weekends.

    Weekend behaviour differs from weekday behaviour for most users; a
    single time-of-day average blurs the two.
    """

    def __init__(self, epoch_s: float) -> None:
        super().__init__(epoch_s)
        # Two banks: index 0 = weekday, 1 = weekend.
        self._sums = np.zeros((2, self.epochs_per_day))
        self._counts = np.zeros((2, self.epochs_per_day), dtype=np.int64)

    def _bank(self, epoch_index: int) -> int:
        day = epoch_index // self.epochs_per_day
        return 1 if day % 7 >= 5 else 0

    def observe(self, epoch_index: int, actual: int) -> None:
        bank, eod = self._bank(epoch_index), self.epoch_of_day(epoch_index)
        self._sums[bank, eod] += actual
        self._counts[bank, eod] += 1

    def predict(self, epoch_index: int) -> float:
        bank, eod = self._bank(epoch_index), self.epoch_of_day(epoch_index)
        if self._counts[bank, eod] == 0:
            # Fall back to the other bank before predicting zero.
            bank = 1 - bank
            if self._counts[bank, eod] == 0:
                return 0.0
        return float(self._sums[bank, eod] / self._counts[bank, eod])


def main() -> None:
    config = ExperimentConfig(n_users=80, n_days=10, train_days=6, seed=29)
    world = WorldSource().world_for(config)

    print("Offline accuracy (test days, online evaluation):")
    summaries = compare_models(
        ["time_of_day", "ewma", "day_of_week"],
        world.trace, world.refresh_of,
        EvaluationConfig(epoch_s=config.epoch_s,
                         train_days=config.train_days))
    print(format_table(
        ["model", "MAE", "RMSE", "bias"],
        [(s.model, f"{s.mae:.2f}", f"{s.rmse:.2f}", f"{s.bias:+.2f}")
         for s in summaries]))

    print("\nEnd to end (the metric that matters):")
    rows = []
    for predictor in ("ewma", "day_of_week"):
        result = Runner(config.variant(predictor=predictor),
                        world=world).run("headline").comparison
        rows.append((predictor,
                     fmt_pct(result.energy_savings, 1),
                     fmt_pct(result.revenue_loss),
                     fmt_pct(result.sla_violation_rate)))
    print(format_table(
        ["predictor", "energy savings", "revenue loss", "SLA violation"],
        rows))


if __name__ == "__main__":
    main()
