"""Quickstart: reproduce the paper's headline claim in one run.

Builds a small synthetic user population, runs the status-quo real-time
ad system and the prefetch+overbooking system on the identical trace,
and prints the three headline metrics:

    energy savings      > 50%
    revenue loss        negligible
    SLA violation rate  negligible

Run:  python examples/quickstart.py [n_users]
"""

import sys

from repro import ExperimentConfig, Runner
from repro.metrics import fmt_pct


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    config = ExperimentConfig(n_users=n_users, n_days=8, train_days=4,
                              seed=7)
    print(f"Simulating {config.n_users} users x {config.n_days} days "
          f"({config.train_days} training) on {config.radio.upper()} ...")
    comparison = Runner(config).run("headline").comparison

    prefetch = comparison.prefetch
    print()
    print("Paper claim: >50% ad-energy reduction, negligible revenue loss")
    print("and SLA violation rate.  Measured:")
    print(f"  ad energy savings      {fmt_pct(comparison.energy_savings, 1)}")
    print(f"  revenue loss           {fmt_pct(comparison.revenue_loss)}")
    print(f"  SLA violation rate     {fmt_pct(comparison.sla_violation_rate)}")
    print(f"  radio wakeup cut       {fmt_pct(comparison.wakeup_reduction, 1)}")
    print()
    print("Mechanics:")
    print(f"  slots served from cache      "
          f"{fmt_pct(prefetch.cache_hit_rate, 1)}")
    print(f"  slots served by rescue       "
          f"{prefetch.rescued_displays} of {prefetch.total_slots}")
    print(f"  real-time fallback slots     {prefetch.fallback_displays}")
    print(f"  duplicate impressions        "
          f"{prefetch.revenue.duplicate_impressions}")
    print(f"  mean static replication      {prefetch.mean_replication:.2f}")


if __name__ == "__main__":
    main()
