"""Scenario: an ad-network operator tunes the prefetching system.

The operator must pick a show-by deadline and how aggressively to sell
predicted inventory before enabling prefetching for a user population.
This example sweeps the two knobs on a synthetic cohort and prints the
trade-off surface plus a recommendation — the workflow behind the
paper's deadline figure.

Run:  python examples/operator_tuning.py
"""

from repro import ExperimentConfig, Runner, WorldSource
from repro.metrics import fmt_pct, format_table

#: Operator requirements.
MAX_SLA_VIOLATION = 0.02
MAX_REVENUE_LOSS = 0.03

DEADLINES_H = (2.0, 4.0, 8.0)
SELL_FACTORS = (0.7, 0.8, 0.9)


def main() -> None:
    base = ExperimentConfig(n_users=80, n_days=8, train_days=4, seed=13)
    world = WorldSource().world_for(base)
    print(f"Tuning on {base.n_users} users, {base.test_days} test days...\n")

    rows = []
    candidates = []
    for deadline_h in DEADLINES_H:
        for sell_factor in SELL_FACTORS:
            config = base.variant(deadline_s=deadline_h * 3600.0,
                                  sell_factor=sell_factor)
            result = Runner(config, world=world).run("headline").comparison
            rows.append((
                f"{deadline_h:g}h", f"{sell_factor:g}",
                fmt_pct(result.energy_savings, 1),
                fmt_pct(result.revenue_loss),
                fmt_pct(result.sla_violation_rate),
            ))
            if (result.sla_violation_rate <= MAX_SLA_VIOLATION
                    and result.revenue_loss <= MAX_REVENUE_LOSS):
                candidates.append((result.energy_savings, deadline_h,
                                   sell_factor, result))

    print(format_table(
        ["deadline", "sell factor", "energy savings", "revenue loss",
         "SLA violation"],
        rows, title="Operating-point sweep"))

    print()
    if not candidates:
        print("No operating point meets the requirements; relax the "
              "deadline or the SLA target.")
        return
    savings, deadline_h, sell_factor, best = max(candidates)
    print(f"Recommendation: deadline={deadline_h:g}h, "
          f"sell_factor={sell_factor:g}")
    print(f"  -> saves {fmt_pct(savings, 1)} of ad energy at "
          f"{fmt_pct(best.revenue_loss)} revenue loss and "
          f"{fmt_pct(best.sla_violation_rate)} SLA violations")


if __name__ == "__main__":
    main()
