"""Scenario: does ad prefetching still matter as networks evolve?

A 2013 system design meets three futures: LTE rollouts, fast-dormancy
handsets, and WiFi offload. This example runs the headline comparison
under each and prints the absolute energy stakes alongside the relative
savings — the analysis behind the X1/X2 extension experiments.

Run:  python examples/network_evolution.py
"""

from repro import ExperimentConfig, Runner
from repro.metrics import battery_impact, fmt_pct, format_table

SCENARIOS = (
    ("3G (paper's setting)", dict(radio="3g")),
    ("3G + fast dormancy", dict(radio="3g-fd")),
    ("LTE rollout", dict(radio="lte")),
    ("50% WiFi offload", dict(radio="3g", wifi_fraction=0.5)),
    ("all WiFi", dict(radio="wifi")),
)


def main() -> None:
    base = ExperimentConfig(n_users=80, n_days=8, train_days=4, seed=19)
    rows = []
    for label, overrides in SCENARIOS:
        result = Runner(base.variant(**overrides)).run("headline").comparison
        realtime = result.realtime.energy
        prefetch = result.prefetch.energy
        before = battery_impact(realtime)
        after = battery_impact(prefetch)
        rows.append((
            label,
            f"{realtime.ad_joules_per_user_day():.0f}",
            f"{prefetch.ad_joules_per_user_day():.0f}",
            fmt_pct(result.energy_savings, 1),
            fmt_pct(before.percent_of_battery_per_day, 1),
            fmt_pct(after.percent_of_battery_per_day, 1),
        ))
    print(format_table(
        ["scenario", "realtime J/u/d", "prefetch J/u/d", "savings",
         "battery/day before", "after"],
        rows,
        title="Ad energy across network evolutions "
              "(relative savings persist; absolute stakes shrink)"))
    print("\nReading: prefetching keeps its >50% relative savings "
          "everywhere, but the joules at stake collapse once the tail "
          "does — on WiFi the whole question disappears.")


if __name__ == "__main__":
    main()
