"""Scenario: an app developer audits their app's ad-energy bill.

Uses the radio model directly — no population simulation — to answer
the developer questions the paper's measurement study raises:

1. How much battery does my ad refresh rate cost per session?
2. What does prefetching a session's ads in one batch save?
3. How does the picture change on LTE and WiFi?

Run:  python examples/app_developer_energy.py
"""

from repro.metrics import format_table
from repro.radio import (
    RadioStateMachine,
    batched_fetch_energy,
    get_profile,
    periodic_fetch_energy,
)

SESSION_S = 420.0          # a typical game session
AD_BYTES = 4000
REFRESH_CHOICES = (15.0, 30.0, 60.0, 120.0)


def session_ads(refresh_s: float) -> int:
    return 1 + int(SESSION_S // refresh_s)


def main() -> None:
    print(f"One {SESSION_S:.0f}s session of an offline game, "
          f"{AD_BYTES} B creatives.\n")

    rows = []
    for radio in ("3g", "lte", "wifi"):
        profile = get_profile(radio)
        for refresh in REFRESH_CHOICES:
            n = session_ads(refresh)
            realtime = periodic_fetch_energy(profile, AD_BYTES, refresh, n)
            prefetch = batched_fetch_energy(profile, AD_BYTES, n)
            rows.append((
                radio, f"{refresh:.0f}s", n, f"{realtime:.1f}",
                f"{prefetch:.1f}",
                f"{100 * (1 - prefetch / realtime):.0f}%",
            ))
    print(format_table(
        ["radio", "refresh", "ads", "realtime J", "prefetched J", "saved"],
        rows, title="Per-session ad energy by refresh rate"))

    # Where do the joules actually go? Inspect the radio state machine.
    profile = get_profile("3g")
    machine = RadioStateMachine(profile, keep_timeline=True)
    t = 0.0
    for _ in range(session_ads(30.0)):
        machine.transfer(t, AD_BYTES, "ad")
        t += 30.0
    machine.finalize()
    residency = machine.state_residency()
    print("\n3G radio time during one 30s-refresh session:")
    total = sum(residency.values())
    for state, seconds in sorted(residency.items(), key=lambda kv: -kv[1]):
        print(f"  {state:<10} {seconds:7.1f}s  ({100 * seconds / total:.0f}%)")
    print(f"\nRadio wakeups: {machine.wakeups} "
          f"(one per ad — the tail-energy problem in one line)")


if __name__ == "__main__":
    main()
