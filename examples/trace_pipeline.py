"""Scenario: the trace pipeline — generate, persist, reload, analyse.

The paper's evaluation rests on usage traces. This example runs the
full trace workflow against the synthetic generator: build a cohort,
write it to JSONL, read it back, and produce the characterization
statistics the paper reports for its dataset.

Run:  python examples/trace_pipeline.py [out.jsonl]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.metrics import format_table
from repro.sim import RngRegistry
from repro.traces import (
    TraceConfig,
    TraceGenerator,
    hour_of_day_profile,
    read_trace,
    refresh_map,
    slots_per_user_day,
    summarize,
    write_trace,
)
from repro.workloads import TOP15, PopulationConfig, build_population


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        path = Path(tempfile.gettempdir()) / "adprefetch_demo_trace.jsonl"

    registry = RngRegistry(master_seed=2013)
    population = build_population(
        PopulationConfig(n_users=250, median_sessions_per_day=9.0),
        registry.stream("population"))
    generator = TraceGenerator(TOP15, TraceConfig(n_days=7),
                               registry.stream("trace"))
    trace = generator.generate(population)

    n = write_trace(trace, path)
    print(f"wrote {n} sessions to {path}")
    trace = read_trace(path)

    refresh = refresh_map(TOP15)
    summary = summarize(trace, refresh)
    print(format_table(
        ["metric", "value"],
        [
            ("users", summary.n_users),
            ("days", summary.n_days),
            ("sessions", summary.n_sessions),
            ("ad slots", summary.n_slots),
            ("slots/user/day (median)",
             f"{summary.slots_per_user_day_median:.0f}"),
            ("slots/user/day (p90)", f"{summary.slots_per_user_day_p90:.0f}"),
            ("peak hour", f"{summary.peak_hour}:00"),
            ("day-over-day autocorrelation",
             f"{summary.day_over_day_autocorrelation:.2f}"),
        ],
        title="Trace characterization"))

    # A terminal-friendly diurnal histogram.
    profile = hour_of_day_profile(trace, refresh)
    print("\nSlots by hour of day:")
    for hour, fraction in enumerate(profile):
        bar = "#" * int(round(fraction * 400))
        print(f"  {hour:02d}h {bar}")

    # Heavy tail across users.
    per_user = slots_per_user_day(trace, refresh).mean(axis=1)
    print(f"\nslots/user/day: p10={np.percentile(per_user, 10):.0f} "
          f"median={np.percentile(per_user, 50):.0f} "
          f"p90={np.percentile(per_user, 90):.0f} "
          f"max={per_user.max():.0f}")


if __name__ == "__main__":
    main()
